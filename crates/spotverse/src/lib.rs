//! # spotverse
//!
//! A reproduction of **SpotVerse** (Son, Gudukbay, Kandemir — MIDDLEWARE
//! 2024): a multi-region cloud resource manager that runs long
//! bioinformatics workloads on spot instances while navigating
//! interruption risk, by ranking regions on a *combined score* — the Spot
//! Placement Score (1–10) plus the Stability Score (1–3, the inverse of
//! the Spot Instance Advisor's Interruption Frequency band) — rather than
//! on spot price alone.
//!
//! The three architecture components of the paper map to:
//!
//! * **Monitor** ([`Monitor`]) — scheduled collector functions persist
//!   per-region prices and advisor metrics to the KV store,
//! * **Optimizer** ([`Optimizer`], Algorithm 1) — threshold-filtered,
//!   price-sorted top-R region selection with round-robin initial
//!   placement, random-among-top-R migration, and a cheapest-on-demand
//!   fallback,
//! * **Controller** (the experiment engine, [`run_experiment`]) — launches, 15-minute
//!   open-request sweeps, two-minute-notice checkpointing, and
//!   interruption-handler relaunches.
//!
//! Baselines from the paper's evaluation are provided as [`Strategy`]
//! implementations: single-region, on-demand, naive multi-region, and a
//! SkyPilot-like cheapest-price baseline.
//!
//! # Examples
//!
//! ```
//! use bio_workloads::{paper_fleet, WorkloadKind};
//! use cloud_market::InstanceType;
//! use sim_kernel::SimRng;
//! use spotverse::{
//!     run_experiment, ExperimentConfig, SpotVerseConfig, SpotVerseStrategy,
//! };
//!
//! let rng = SimRng::seed_from_u64(42);
//! let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 4, &rng);
//! let config = ExperimentConfig::new(42, InstanceType::M5Xlarge, fleet);
//! let strategy = SpotVerseStrategy::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
//! let report = run_experiment(config, Box::new(strategy));
//! assert_eq!(report.completed, 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpointing;
mod config;
pub mod controlplane;
mod deadline;
mod experiment;
pub mod fleet;
mod forecast;
pub mod health;
pub mod loadgen;
mod monitor;
mod optimizer;
pub mod orchestrate;
mod provider;
pub mod replay;
mod report;
mod repetitions;
pub mod resilience;
mod strategy;
pub mod sweep;
pub mod tournament;
pub mod trace;
pub mod workload;

pub use checkpointing::{KvCheckpointStore, CHECKPOINT_TABLE};
pub use config::{InitialPlacement, SpotVerseConfig, SpotVerseConfigBuilder};
pub use controlplane::ControlPlane;
pub use experiment::{
    run_experiment, run_experiment_on, CheckpointBackend, CheckpointTelemetry, CostBreakdown,
    ExperimentConfig, ExperimentReport, INTERRUPTION_HANDLER, LOG_BUCKET,
};
pub use fleet::{run_fleet, run_fleet_on, FleetConfig, FleetReport, FleetWorkload, Priority};
pub use loadgen::{ArrivalProcess, LoadProfile, TenantClass, WorkloadMix};
pub use workload::{WorkloadPhase, WorkloadReport};
pub use resilience::{retry_with_backoff, BackoffPolicy, RetryOutcome};
pub use health::{
    BreakerPolicy, BreakerState, BreakerTransition, HealthConfig, RegionHealth,
    ResilienceTelemetry, TelemetryFreshness,
};
pub use monitor::{
    CollectOutcome, Monitor, MonitorError, SnapshotMemo, COLLECTOR_FUNCTION, METRICS_TABLE,
};
pub use deadline::{DeadlineAwareStrategy, DeadlinePolicy};
pub use orchestrate::{
    run_matrix_orchestrated, AttemptRecord, DeadLetter, OrchestratedSweepReport,
    OrchestrationStats, OrchestratorConfig, DEADLETTER_TABLE, EXECUTOR_FUNCTION, LEASE_TABLE,
    RESULT_BUCKET,
};
pub use forecast::{ForecastingSpotVerseStrategy, HoltSmoother, MetricForecaster};
pub use replay::{
    parse_trace_jsonl, render_analysis, render_analysis_json, replay_lines, replay_str,
    trace_lines_to_jsonl, CellState, ReplayCursor, ReplayState, TimeWindow, TraceLine,
    TraceParseError,
};
pub use optimizer::{
    CandidateOutcome, CandidateVerdict, MigrationPolicy, Optimizer, Placement, RegionAssessment,
};
pub use provider::{degrade_assessments, MetricAvailability, ProviderAdaptedStrategy};
pub use report::{compare, normalized_cost, resilience_summary, summary_line, Comparison};
pub use repetitions::{
    repetition_config, repetition_config_shared_market, run_repetitions, AggregateReport,
    RepetitionMarket,
};
pub use sweep::{
    merged_fleet_trace_jsonl, merged_trace_jsonl, resolve_jobs, run_fleet_matrix, run_matrix,
    CellOutcome, FleetCellOutcome, FleetSweepCell, MarketCache, SweepCell, SweepOutcome, JOBS_ENV,
};
pub use tournament::{
    render_tournament, run_tournament, RegimeStanding, TournamentChaos, TournamentConfig,
    TournamentReport, TournamentRow,
};
pub use trace::{
    append_record_json, append_trace_jsonl, trace_to_jsonl, DecisionKind, RunTrace, TraceConfig,
    TraceEvent, TraceRecord, TraceStats, Tracer,
};
pub use strategy::{
    AblatedSpotVerseStrategy, BidPriceAwareStrategy, CheckpointAdaptiveStrategy,
    NaiveMultiRegionStrategy, OnDemandStrategy, SingleRegionStrategy, SkyPilotStrategy,
    SpotVerseStrategy, Strategy, StrategyContext,
};
