//! The experiment engine: runs a fleet of workloads under a placement
//! strategy against the simulated cloud, reproducing the paper's
//! measurement loop.
//!
//! The engine embodies SpotVerse's **Controller** (paper §3.2, §4):
//!
//! * it launches initial instances per the strategy's placements,
//! * open (unfulfilled) spot requests are retried on a 15-minute sweep,
//! * a two-minute interruption notice precedes every reclaim; checkpoint
//!   workloads upload their progress (KV record + working set to the
//!   object store) inside the notice window,
//! * on reclaim, the interruption-handler function runs and the strategy
//!   chooses the relaunch target,
//! * the Monitor collects market metrics on a periodic schedule so
//!   SpotVerse decides from *observed* data.
//!
//! Everything bills into one ledger; the report reproduces the paper's
//! metrics: completion times, interruption counts and their regional
//! distribution, and the full cost breakdown.

use std::collections::BTreeMap;
use std::sync::Arc;

use bio_workloads::WorkloadSpec;
use chaos::ChaosScenario;
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket, Usd};
use sim_kernel::{SimDuration, SimTime, TimeSeries};

use crate::fleet::FleetConfig;
use crate::health::{HealthConfig, ResilienceTelemetry};
use crate::strategy::Strategy;
use crate::trace::{RunTrace, TraceConfig};

/// Name of the interruption-handler function (paper §4).
pub const INTERRUPTION_HANDLER: &str = "spotverse-interruption-handler";

/// Where checkpoint working sets are persisted (paper §7 proposes EFS as
/// an alternative to S3; the checkpoint-storage ablation quantifies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointBackend {
    /// S3-like object store: cheap storage, cross-region puts pay transfer
    /// and must fit the two-minute notice.
    ObjectStore,
    /// EFS-like shared filesystem: near-instant in-region writes, pricier
    /// storage, WAN-penalized cross-region reads on resume.
    SharedFileSystem,
}
/// Bucket holding checkpoints and activity logs.
pub const LOG_BUCKET: &str = "spotverse-logs";

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed (market + all decision streams fork from it).
    pub seed: u64,
    /// Market build parameters.
    pub market: MarketConfig,
    /// The instance type every workload runs on.
    pub instance_type: InstanceType,
    /// The fleet.
    pub workloads: Vec<WorkloadSpec>,
    /// When the fleet starts (offset into the market horizon).
    pub start: SimTime,
    /// Monitor collection period (default 15 minutes).
    pub monitor_period: SimDuration,
    /// Open-request retry sweep interval (the paper's 15 minutes).
    pub retry_interval: SimDuration,
    /// Hard deadline after `start`; workloads still unfinished then are
    /// reported as incomplete.
    pub max_runtime: SimDuration,
    /// Route optimizer inputs through the Monitor→KV snapshot pipeline
    /// (true reproduces the paper's architecture; false reads the market
    /// directly).
    pub monitor_pipeline: bool,
    /// Where checkpoint working sets are persisted.
    pub checkpoint_backend: CheckpointBackend,
    /// Optional fault-injection scenario, compiled against `seed` and
    /// `start`. `None` runs fault-free.
    pub chaos: Option<ChaosScenario>,
    /// Resilience control plane tuning: breaker policy and telemetry TTL.
    pub health: HealthConfig,
    /// Decision-trace recording (off by default; purely observational, so
    /// enabling it changes no other report field).
    pub trace: TraceConfig,
}

impl ExperimentConfig {
    /// A standard configuration: monitor pipeline on, 15-minute sweeps,
    /// 30-day guard, start at day 1 of the market horizon.
    pub fn new(seed: u64, instance_type: InstanceType, workloads: Vec<WorkloadSpec>) -> Self {
        ExperimentConfig {
            seed,
            market: MarketConfig::with_seed(seed),
            instance_type,
            workloads,
            start: SimTime::from_days(1),
            monitor_period: SimDuration::from_mins(15),
            retry_interval: SimDuration::from_mins(15),
            max_runtime: SimDuration::from_days(30),
            monitor_pipeline: true,
            checkpoint_backend: CheckpointBackend::ObjectStore,
            chaos: None,
            health: HealthConfig::default(),
            trace: TraceConfig::default(),
        }
    }
}

/// The cost breakdown the paper's cost model reports (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Everything.
    pub total: Usd,
    /// Spot instance usage.
    pub spot_instances: Usd,
    /// On-demand instance usage.
    pub on_demand_instances: Usd,
    /// Cross-region data transfer (checkpoints, AMI copies).
    pub data_transfer: Usd,
    /// Shared serverless services (functions, KV, metrics, storage fees).
    pub shared_services: Usd,
}

/// Checkpoint-durability and resilience counters. All zeros on a
/// fault-free run: the hardened Controller only exercises these paths
/// when faults are injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointTelemetry {
    /// Checkpoint write attempts (notice-window uploads).
    pub writes: u64,
    /// Writes still in flight at reclaim — torn, never trusted.
    pub torn_writes: u64,
    /// Durable generations that read back corrupt.
    pub corrupt_reads: u64,
    /// Reclaims resolved by falling back to an older durable generation.
    pub generation_fallbacks: u64,
    /// Reclaims that lost all durable progress and restarted from scratch.
    pub scratch_restarts: u64,
    /// Control-plane retries taken after throttling errors.
    pub throttled_retries: u64,
}

/// The result of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Strategy display name.
    pub strategy: String,
    /// Fleet size.
    pub workloads: usize,
    /// Workloads that finished before the deadline.
    pub completed: usize,
    /// Start → last completion (zero if nothing completed).
    pub makespan: SimDuration,
    /// Mean per-workload completion time.
    pub mean_completion: SimDuration,
    /// Total spot interruptions experienced.
    pub interruptions: u64,
    /// Interruptions per region (Figure 7c).
    pub interruptions_by_region: BTreeMap<Region, u64>,
    /// Cumulative interruptions over elapsed time (Figures 7a/7d).
    pub cumulative_interruptions: TimeSeries,
    /// Completed-workload count over elapsed time (Figure 7b).
    pub completions_over_time: TimeSeries,
    /// Instance launches per region.
    pub launches_by_region: BTreeMap<Region, u64>,
    /// Costs.
    pub cost: CostBreakdown,
    /// Total billed instance-hours.
    pub instance_hours: f64,
    /// Spot request attempts (including unfulfilled).
    pub spot_attempts: u64,
    /// Spot requests fulfilled.
    pub spot_fulfillments: u64,
    /// Checkpoint-durability and resilience counters.
    pub checkpoints: CheckpointTelemetry,
    /// Region-health control plane counters (breakers, staleness,
    /// degraded placement). All zeros on a fault-free run.
    pub resilience: ResilienceTelemetry,
    /// The decision trace, when [`ExperimentConfig::trace`] enabled it.
    pub trace: Option<RunTrace>,
}

impl ExperimentReport {
    /// Completion rate in `[0, 1]`.
    pub fn completion_rate(&self) -> f64 {
        if self.workloads == 0 {
            return 0.0;
        }
        self.completed as f64 / self.workloads as f64
    }
}

/// Runs one experiment, building a fresh market from the config.
pub fn run_experiment(config: ExperimentConfig, strategy: Box<dyn Strategy>) -> ExperimentReport {
    let market = Arc::new(SpotMarket::new(config.market));
    run_experiment_on(market, config, strategy)
}

/// Runs one experiment against a shared market, so several strategies can
/// be compared on the identical market trajectory.
///
/// This is the degenerate case of the fleet engine
/// ([`run_fleet_on`](crate::fleet::run_fleet_on)): every workload arrives
/// at the start and no capacity cap applies, which reproduces the
/// original single-experiment Controller event-for-event.
///
/// # Panics
///
/// Panics if the market was built from a different [`MarketConfig`] than
/// the experiment's, or if the fleet is empty.
pub fn run_experiment_on(
    market: Arc<SpotMarket>,
    config: ExperimentConfig,
    strategy: Box<dyn Strategy>,
) -> ExperimentReport {
    assert_eq!(
        market.config(),
        config.market,
        "shared market must match the experiment's market config"
    );
    assert!(!config.workloads.is_empty(), "empty workload fleet");
    crate::fleet::run_fleet_on(market, FleetConfig::from_experiment(&config), strategy).aggregate
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_workloads::{paper_fleet, WorkloadKind};
    use cloud_market::Region;
    use sim_kernel::SimRng;

    use crate::config::{InitialPlacement, SpotVerseConfig};
    use crate::trace::{DecisionKind, TraceEvent};
    use crate::strategy::{
        OnDemandStrategy, SingleRegionStrategy, SpotVerseStrategy,
    };

    fn small_fleet(kind: WorkloadKind, n: usize, seed: u64) -> ExperimentConfig {
        let rng = SimRng::seed_from_u64(seed);
        let fleet = paper_fleet(kind, n, &rng);
        ExperimentConfig::new(seed, InstanceType::M5Xlarge, fleet)
    }

    #[test]
    fn on_demand_fleet_completes_exactly_on_time() {
        let config = small_fleet(WorkloadKind::GenomeReconstruction, 5, 11);
        let durations: Vec<SimDuration> = config.workloads.iter().map(|w| w.duration).collect();
        let report = run_experiment(config, Box::new(OnDemandStrategy::new()));
        assert_eq!(report.completed, 5);
        assert_eq!(report.interruptions, 0);
        assert_eq!(report.cost.spot_instances, Usd::ZERO);
        assert!(report.cost.on_demand_instances > Usd::ZERO);
        // Makespan = longest workload + boot (150 s).
        let expected = *durations.iter().max().unwrap() + SimDuration::from_secs(150);
        assert_eq!(report.makespan, expected);
        assert_eq!(report.spot_attempts, 0);
    }

    #[test]
    fn single_region_unstable_market_interrupts_and_recovers() {
        let config = small_fleet(WorkloadKind::GenomeReconstruction, 8, 12);
        let report = run_experiment(
            config,
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert_eq!(report.completed, 8, "all workloads eventually finish");
        assert!(report.interruptions > 0, "ca-central-1 is interruption-prone");
        assert_eq!(
            report.interruptions_by_region.keys().copied().collect::<Vec<_>>(),
            vec![Region::CaCentral1],
            "single-region interruptions stay in one region"
        );
        assert!(report.makespan > SimDuration::from_hours(10));
        assert!(report.cost.total > Usd::ZERO);
    }

    #[test]
    fn spotverse_beats_single_region_on_interruptions() {
        let seed = 13;
        let single = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 20, seed),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let spotverse = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 20, seed),
            Box::new(SpotVerseStrategy::new(
                SpotVerseConfig::builder(InstanceType::M5Xlarge)
                    .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
                    .build(),
            )),
        );
        assert_eq!(spotverse.completed, 20);
        assert!(
            spotverse.interruptions < single.interruptions,
            "spotverse {} vs single {}",
            spotverse.interruptions,
            single.interruptions
        );
        assert!(
            spotverse.makespan < single.makespan,
            "spotverse {} vs single {}",
            spotverse.makespan,
            single.makespan
        );
        // SpotVerse migrated away: interruptions span multiple regions or
        // at least launches do.
        assert!(spotverse.launches_by_region.len() > 1);
    }

    #[test]
    fn checkpoint_workloads_lose_less_time_than_standard() {
        let seed = 14;
        let standard = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 8, seed),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let checkpoint = run_experiment(
            small_fleet(WorkloadKind::NgsPreprocessing, 8, seed),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert_eq!(checkpoint.completed, 8);
        assert!(
            checkpoint.mean_completion < standard.mean_completion,
            "checkpoint {} vs standard {}",
            checkpoint.mean_completion,
            standard.mean_completion
        );
        // Checkpoint uploads appear as data-transfer + kv spend.
        assert!(checkpoint.cost.shared_services > Usd::ZERO);
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let a = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 6, 15),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let b = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 6, 15),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert_eq!(a.interruptions, b.interruptions);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cost.total, b.cost.total);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn shared_market_requires_matching_config() {
        let config = small_fleet(WorkloadKind::GenomeReconstruction, 2, 16);
        let other_market = Arc::new(SpotMarket::new(MarketConfig::with_seed(999)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_experiment_on(other_market, config, Box::new(OnDemandStrategy::new()))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cumulative_series_are_monotone() {
        let report = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 8, 17),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let values: Vec<f64> = report
            .cumulative_interruptions
            .iter()
            .map(|&(_, v)| v)
            .collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            report.completions_over_time.last().map(|(_, v)| v as usize),
            Some(report.completed)
        );
        assert_eq!(report.completion_rate(), 1.0);
    }

    #[test]
    fn fault_free_runs_never_engage_the_control_plane() {
        // Plenty of natural interruptions in ca-central-1, yet no chaos:
        // the breakers, staleness counters, and degraded mode must all
        // stay at zero.
        let report = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 8, 12),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert!(report.interruptions > 0);
        assert_eq!(report.resilience, ResilienceTelemetry::default());
    }

    #[test]
    fn tracing_is_purely_observational() {
        let base = small_fleet(WorkloadKind::GenomeReconstruction, 5, 12);
        let plain = run_experiment(
            base.clone(),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let mut traced_cfg = base;
        traced_cfg.trace = TraceConfig::enabled();
        let mut traced = run_experiment(
            traced_cfg,
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let trace = traced.trace.take().expect("tracing was enabled");
        assert!(plain.trace.is_none(), "tracing is off by default");
        assert_eq!(plain, traced, "tracing must not change any other report field");
        assert!(matches!(trace.events.first().unwrap().event, TraceEvent::RunStarted { .. }));
        assert!(matches!(trace.events.last().unwrap().event, TraceEvent::RunEnded { .. }));
        assert_eq!(trace.stats.interruptions, traced.interruptions);
        assert_eq!(
            trace.count_matching(|e| matches!(e, TraceEvent::Interrupted { .. })),
            traced.interruptions
        );
    }

    #[test]
    fn traced_spotverse_decisions_carry_candidate_verdicts() {
        let mut config = small_fleet(WorkloadKind::GenomeReconstruction, 4, 13);
        config.trace = TraceConfig::enabled();
        let report = run_experiment(
            config,
            Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
                InstanceType::M5Xlarge,
            ))),
        );
        let trace = report.trace.expect("tracing was enabled");
        let initial = trace
            .events
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::Decision { kind: DecisionKind::Initial, candidates, placements, .. } => {
                    Some((candidates.clone(), placements.clone()))
                }
                _ => None,
            })
            .expect("initial decision recorded");
        let (candidates, placements) = initial;
        assert_eq!(placements.len(), report.workloads);
        let candidates = candidates.expect("spotverse explains its candidates");
        assert!(!candidates.is_empty());
        // Every spot placement must target a region the explanation selected.
        use crate::optimizer::CandidateOutcome;
        for p in placements.iter().filter(|p| p.is_spot()) {
            assert!(
                candidates.iter().any(|c| c.region == p.region()
                    && matches!(c.outcome, CandidateOutcome::Selected { .. })),
                "placement {p:?} not among selected candidates"
            );
        }
    }

    #[test]
    fn interruption_total_matches_regional_sum() {
        let report = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 10, 18),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let regional: u64 = report.interruptions_by_region.values().sum();
        assert_eq!(regional, report.interruptions);
    }
}
