//! The experiment engine: runs a fleet of workloads under a placement
//! strategy against the simulated cloud, reproducing the paper's
//! measurement loop.
//!
//! The engine embodies SpotVerse's **Controller** (paper §3.2, §4):
//!
//! * it launches initial instances per the strategy's placements,
//! * open (unfulfilled) spot requests are retried on a 15-minute sweep,
//! * a two-minute interruption notice precedes every reclaim; checkpoint
//!   workloads upload their progress (KV record + working set to the
//!   object store) inside the notice window,
//! * on reclaim, the interruption-handler function runs and the strategy
//!   chooses the relaunch target,
//! * the Monitor collects market metrics on a periodic schedule so
//!   SpotVerse decides from *observed* data.
//!
//! Everything bills into one ledger; the report reproduces the paper's
//! metrics: completion times, interruption counts and their regional
//! distribution, and the full cost breakdown.

use std::collections::BTreeMap;
use std::sync::Arc;

use aws_stack::{
    FileSystemId, FunctionConfig, FunctionRuntime, KvError, KvStore, MetricsService, ObjectBody,
    ObjectStore, ObjectStoreError, RetryPolicy, SharedFileSystem,
};
use bio_workloads::WorkloadSpec;
use chaos::{ChaosEngine, ChaosScenario};
use cloud_compute::{
    Ec2, Ec2Config, InstanceId, ServiceKind, SpotRequestOutcome,
    TerminationReason, INTERRUPTION_NOTICE,
};
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket, Usd};
use galaxy_flow::WorkflowInvocation;
use sim_kernel::{
    CumulativeCounter, Model, Scheduler, SimDuration, SimRng, SimTime, Simulation, TimeSeries,
};

use crate::health::{
    BreakerTransition, HealthConfig, RegionHealth, ResilienceTelemetry, TelemetryFreshness,
};
use crate::monitor::{CollectOutcome, Monitor, MonitorError, SnapshotMemo};
use crate::optimizer::{Placement, RegionAssessment};
use crate::resilience::{retry_with_backoff, BackoffPolicy};
use crate::strategy::{Strategy, StrategyContext};
use crate::trace::{DecisionKind, RunTrace, TraceConfig, TraceEvent, Tracer};

/// Name of the interruption-handler function (paper §4).
pub const INTERRUPTION_HANDLER: &str = "spotverse-interruption-handler";

/// Where checkpoint working sets are persisted (paper §7 proposes EFS as
/// an alternative to S3; the checkpoint-storage ablation quantifies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointBackend {
    /// S3-like object store: cheap storage, cross-region puts pay transfer
    /// and must fit the two-minute notice.
    ObjectStore,
    /// EFS-like shared filesystem: near-instant in-region writes, pricier
    /// storage, WAN-penalized cross-region reads on resume.
    SharedFileSystem,
}
/// Bucket holding checkpoints and activity logs.
pub const LOG_BUCKET: &str = "spotverse-logs";

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed (market + all decision streams fork from it).
    pub seed: u64,
    /// Market build parameters.
    pub market: MarketConfig,
    /// The instance type every workload runs on.
    pub instance_type: InstanceType,
    /// The fleet.
    pub workloads: Vec<WorkloadSpec>,
    /// When the fleet starts (offset into the market horizon).
    pub start: SimTime,
    /// Monitor collection period (default 15 minutes).
    pub monitor_period: SimDuration,
    /// Open-request retry sweep interval (the paper's 15 minutes).
    pub retry_interval: SimDuration,
    /// Hard deadline after `start`; workloads still unfinished then are
    /// reported as incomplete.
    pub max_runtime: SimDuration,
    /// Route optimizer inputs through the Monitor→KV snapshot pipeline
    /// (true reproduces the paper's architecture; false reads the market
    /// directly).
    pub monitor_pipeline: bool,
    /// Where checkpoint working sets are persisted.
    pub checkpoint_backend: CheckpointBackend,
    /// Optional fault-injection scenario, compiled against `seed` and
    /// `start`. `None` runs fault-free.
    pub chaos: Option<ChaosScenario>,
    /// Resilience control plane tuning: breaker policy and telemetry TTL.
    pub health: HealthConfig,
    /// Decision-trace recording (off by default; purely observational, so
    /// enabling it changes no other report field).
    pub trace: TraceConfig,
}

impl ExperimentConfig {
    /// A standard configuration: monitor pipeline on, 15-minute sweeps,
    /// 30-day guard, start at day 1 of the market horizon.
    pub fn new(seed: u64, instance_type: InstanceType, workloads: Vec<WorkloadSpec>) -> Self {
        ExperimentConfig {
            seed,
            market: MarketConfig::with_seed(seed),
            instance_type,
            workloads,
            start: SimTime::from_days(1),
            monitor_period: SimDuration::from_mins(15),
            retry_interval: SimDuration::from_mins(15),
            max_runtime: SimDuration::from_days(30),
            monitor_pipeline: true,
            checkpoint_backend: CheckpointBackend::ObjectStore,
            chaos: None,
            health: HealthConfig::default(),
            trace: TraceConfig::default(),
        }
    }
}

/// The cost breakdown the paper's cost model reports (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Everything.
    pub total: Usd,
    /// Spot instance usage.
    pub spot_instances: Usd,
    /// On-demand instance usage.
    pub on_demand_instances: Usd,
    /// Cross-region data transfer (checkpoints, AMI copies).
    pub data_transfer: Usd,
    /// Shared serverless services (functions, KV, metrics, storage fees).
    pub shared_services: Usd,
}

/// Checkpoint-durability and resilience counters. All zeros on a
/// fault-free run: the hardened Controller only exercises these paths
/// when faults are injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointTelemetry {
    /// Checkpoint write attempts (notice-window uploads).
    pub writes: u64,
    /// Writes still in flight at reclaim — torn, never trusted.
    pub torn_writes: u64,
    /// Durable generations that read back corrupt.
    pub corrupt_reads: u64,
    /// Reclaims resolved by falling back to an older durable generation.
    pub generation_fallbacks: u64,
    /// Reclaims that lost all durable progress and restarted from scratch.
    pub scratch_restarts: u64,
    /// Control-plane retries taken after throttling errors.
    pub throttled_retries: u64,
}

/// The result of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Strategy display name.
    pub strategy: String,
    /// Fleet size.
    pub workloads: usize,
    /// Workloads that finished before the deadline.
    pub completed: usize,
    /// Start → last completion (zero if nothing completed).
    pub makespan: SimDuration,
    /// Mean per-workload completion time.
    pub mean_completion: SimDuration,
    /// Total spot interruptions experienced.
    pub interruptions: u64,
    /// Interruptions per region (Figure 7c).
    pub interruptions_by_region: BTreeMap<Region, u64>,
    /// Cumulative interruptions over elapsed time (Figures 7a/7d).
    pub cumulative_interruptions: TimeSeries,
    /// Completed-workload count over elapsed time (Figure 7b).
    pub completions_over_time: TimeSeries,
    /// Instance launches per region.
    pub launches_by_region: BTreeMap<Region, u64>,
    /// Costs.
    pub cost: CostBreakdown,
    /// Total billed instance-hours.
    pub instance_hours: f64,
    /// Spot request attempts (including unfulfilled).
    pub spot_attempts: u64,
    /// Spot requests fulfilled.
    pub spot_fulfillments: u64,
    /// Checkpoint-durability and resilience counters.
    pub checkpoints: CheckpointTelemetry,
    /// Region-health control plane counters (breakers, staleness,
    /// degraded placement). All zeros on a fault-free run.
    pub resilience: ResilienceTelemetry,
    /// The decision trace, when [`ExperimentConfig::trace`] enabled it.
    pub trace: Option<RunTrace>,
}

impl ExperimentReport {
    /// Completion rate in `[0, 1]`.
    pub fn completion_rate(&self) -> f64 {
        if self.workloads == 0 {
            return 0.0;
        }
        self.completed as f64 / self.workloads as f64
    }
}

#[derive(Debug)]
enum Event {
    Start,
    Launch(usize),
    Retry(usize),
    Notice(usize, InstanceId),
    Reclaim(usize, InstanceId),
    Complete(usize, InstanceId),
    MonitorTick,
}

#[derive(Debug)]
struct RunningInstance {
    instance: InstanceId,
    region: Region,
    ready_at: SimTime,
}

/// A checkpoint generation that finished uploading before its instance
/// was reclaimed.
#[derive(Debug, Clone, Copy)]
struct DurableCheckpoint {
    generation: u64,
    units: usize,
    written_at: SimTime,
}

/// A checkpoint upload still being judged: durable only if it completed
/// before the reclaim and its KV record landed.
#[derive(Debug, Clone, Copy)]
struct PendingCheckpoint {
    generation: u64,
    units: usize,
    completes_at: SimTime,
    recorded: bool,
}

/// Per-workload checkpoint ledger: the durable generations (newest last)
/// and the write currently in flight.
#[derive(Debug, Default)]
struct CheckpointLog {
    durable: Vec<DurableCheckpoint>,
    pending: Option<PendingCheckpoint>,
    next_generation: u64,
}

#[derive(Debug)]
struct WorkloadRuntime {
    spec: WorkloadSpec,
    invocation: WorkflowInvocation,
    placement: Placement,
    running: Option<RunningInstance>,
    completed_at: Option<SimTime>,
    launches: u32,
    checkpoints: CheckpointLog,
}

struct ExperimentModel {
    config: ExperimentConfig,
    market: Arc<SpotMarket>,
    ec2: Ec2,
    s3: ObjectStore,
    efs: SharedFileSystem,
    efs_id: Option<FileSystemId>,
    kv: KvStore,
    functions: FunctionRuntime,
    metrics: MetricsService,
    monitor: Monitor,
    monitor_memo: SnapshotMemo,
    strategy: Box<dyn Strategy>,
    strategy_rng: SimRng,
    workloads: Vec<WorkloadRuntime>,
    completed: usize,
    interruptions: CumulativeCounter,
    interruptions_by_region: BTreeMap<Region, u64>,
    completions: CumulativeCounter,
    launches_by_region: BTreeMap<Region, u64>,
    deadline: SimTime,
    aborted: bool,
    chaos: Option<ChaosEngine>,
    telemetry: CheckpointTelemetry,
    backoff_rng: SimRng,
    monitor_backoff: u32,
    health: RegionHealth,
    freshness: TelemetryFreshness,
    quarantined_decisions: u64,
    collect_failing: bool,
    degraded_since: Option<SimTime>,
    tracer: Tracer,
}

impl std::fmt::Debug for ExperimentModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentModel")
            .field("strategy", &self.strategy.name())
            .field("completed", &self.completed)
            .field("interruptions", &self.interruptions.count())
            .finish_non_exhaustive()
    }
}

impl ExperimentModel {
    fn done(&self) -> bool {
        self.completed == self.workloads.len() || self.aborted
    }

    /// Current optimizer inputs plus whether the decision must *degrade*.
    ///
    /// With the pipeline enabled, the Monitor's latest persisted snapshot
    /// is served as long as it is within the telemetry TTL; while
    /// collection is failing, each such serve is a counted *stale serve*
    /// of last-good data. Past the TTL the snapshot is still returned but
    /// flagged degraded: the caller places cheapest-on-demand instead of
    /// trusting expired metrics. Without the pipeline (or before the
    /// first snapshot) decisions read the market directly — either way
    /// they observe it *through* any active fault overlay.
    fn decision_inputs(&mut self, now: SimTime) -> (Vec<RegionAssessment>, bool) {
        if self.config.monitor_pipeline {
            let ttl = self.config.health.telemetry_ttl;
            match self.monitor.assessments_no_older_than(&self.kv, now, ttl) {
                Ok((snapshot, age)) => {
                    if self.collect_failing {
                        self.freshness.stale_serves += 1;
                        self.freshness.max_staleness = self.freshness.max_staleness.max(age);
                        self.tracer.record(now, TraceEvent::StaleServe { age });
                    }
                    return (snapshot, false);
                }
                Err(MonitorError::Stale { .. }) => {
                    if let Ok((snapshot, age)) =
                        self.monitor.latest_assessments_with_age(&self.kv, now)
                    {
                        self.freshness.degraded_decisions += 1;
                        self.freshness.max_staleness = self.freshness.max_staleness.max(age);
                        if self.degraded_since.is_none() {
                            self.degraded_since = Some(now);
                        }
                        self.tracer.record(now, TraceEvent::DegradedDecision { age });
                        return (snapshot, true);
                    }
                }
                Err(_) => {}
            }
        }
        let overlay = self.chaos.as_ref().map(|c| c.overlay());
        let snapshot = self
            .monitor
            .fresh_assessments_with_overlay(&self.market, overlay, now)
            .expect("market assessments within horizon");
        (snapshot, false)
    }

    /// Marks the collection pipeline healthy again and settles any open
    /// degraded-placement interval.
    fn note_collection_success(&mut self, now: SimTime) {
        self.collect_failing = false;
        if let Some(since) = self.degraded_since.take() {
            let duration = now.saturating_duration_since(since);
            self.freshness.degraded_time += duration;
            self.tracer.record(now, TraceEvent::DegradedInterval { duration });
        }
    }

    /// Marks the collection pipeline failing: subsequent decisions served
    /// from the persisted snapshot count as stale serves.
    fn note_collection_failure(&mut self) {
        self.collect_failing = true;
        self.freshness.collection_failures += 1;
    }

    /// Logs a breaker state change reported by a `record_*` observation.
    fn trace_breaker(&mut self, now: SimTime, transition: Option<BreakerTransition>) {
        if let Some(t) = transition {
            self.tracer
                .record(now, TraceEvent::Breaker { region: t.region, from: t.from, to: t.to });
        }
    }

    /// One monitor collection cycle, observed through the fault overlay.
    /// Memoized per market epoch: a tick inside the hour of the last
    /// successful collection (with an unchanged overlay window set) skips
    /// the redundant market reads and KV writes.
    fn run_monitor_collection(&mut self, now: SimTime) -> Result<CollectOutcome, MonitorError> {
        let overlay = self.chaos.as_ref().map(|c| c.overlay());
        self.monitor.collect_memoized(
            &self.market,
            overlay,
            now,
            &mut self.monitor_memo,
            &mut self.functions,
            &mut self.kv,
            &mut self.metrics,
            self.ec2.ledger_mut(),
        )
    }

    fn relocate(&mut self, w: usize, now: SimTime, previous: Region) -> Placement {
        let (assessments, degraded) = self.decision_inputs(now);
        if degraded {
            // Expired telemetry: don't trust scores or spot prices, take
            // guaranteed capacity at the cheapest on-demand rate. Skips
            // the strategy (and its RNG) entirely — only reachable under
            // chaos, so fault-free streams are untouched.
            let placement = Placement::OnDemand(cheapest_on_demand(&assessments));
            if self.tracer.enabled() {
                self.tracer.record(
                    now,
                    TraceEvent::Decision {
                        kind: DecisionKind::Migration,
                        workload: Some(w),
                        previous: Some(previous),
                        degraded: true,
                        quarantined: Vec::new(),
                        candidates: None,
                        placements: vec![placement],
                    },
                );
            }
            return placement;
        }
        let quarantined = self.health.quarantined(now);
        if !quarantined.is_empty() {
            self.quarantined_decisions += 1;
        }
        let mut ctx = StrategyContext {
            instance_type: self.config.instance_type,
            now,
            assessments: &assessments,
            quarantined: &quarantined,
            rng: &mut self.strategy_rng,
        };
        let placement = self.strategy.relocate(&mut ctx, previous);
        if self.tracer.enabled() {
            let candidates =
                self.strategy
                    .explain_candidates(&assessments, &quarantined, Some(previous));
            self.tracer.record(
                now,
                TraceEvent::Decision {
                    kind: DecisionKind::Migration,
                    workload: Some(w),
                    previous: Some(previous),
                    degraded: false,
                    quarantined,
                    candidates,
                    placements: vec![placement],
                },
            );
        }
        placement
    }

    fn handle_start(&mut self, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        // Prime the Monitor so the first decision has a snapshot. Under a
        // throttle storm the collection may fail; decisions then fall back
        // to fresh market reads until a tick succeeds.
        match self.run_monitor_collection(now) {
            Ok(_) => self.note_collection_success(now),
            Err(e) => {
                self.telemetry.throttled_retries += 1;
                self.note_collection_failure();
                self.tracer
                    .record(now, TraceEvent::CollectionFailed { retryable: e.is_retryable() });
            }
        }
        scheduler.schedule_in(self.config.monitor_period, Event::MonitorTick);

        let (assessments, degraded) = self.decision_inputs(now);
        let n = self.workloads.len();
        let mut quarantined = Vec::new();
        let placements = if degraded {
            vec![Placement::OnDemand(cheapest_on_demand(&assessments)); n]
        } else {
            quarantined = self.health.quarantined(now);
            if !quarantined.is_empty() {
                self.quarantined_decisions += 1;
            }
            let mut ctx = StrategyContext {
                instance_type: self.config.instance_type,
                now,
                assessments: &assessments,
                quarantined: &quarantined,
                rng: &mut self.strategy_rng,
            };
            self.strategy.initial_placements(&mut ctx, n)
        };
        debug_assert_eq!(placements.len(), n);
        if self.tracer.enabled() {
            let candidates = if degraded {
                None
            } else {
                self.strategy.explain_candidates(&assessments, &quarantined, None)
            };
            self.tracer.record(
                now,
                TraceEvent::Decision {
                    kind: DecisionKind::Initial,
                    workload: None,
                    previous: None,
                    degraded,
                    quarantined,
                    candidates,
                    placements: placements.clone(),
                },
            );
        }
        for (w, placement) in placements.into_iter().enumerate() {
            self.workloads[w].placement = placement;
            scheduler.schedule_in(SimDuration::ZERO, Event::Launch(w));
        }
    }

    fn handle_launch(&mut self, w: usize, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        if self.workloads[w].completed_at.is_some() || self.workloads[w].running.is_some() {
            return;
        }
        let itype = self.config.instance_type;
        let placement = self.workloads[w].placement;
        match placement {
            Placement::Spot(region) => match self.ec2.request_spot(region, itype, now) {
                Ok(SpotRequestOutcome::Fulfilled(launch)) => {
                    self.note_launch(region);
                    // Heals breaker strikes / closes a half-open probe; a
                    // structural no-op when the region has no breaker
                    // entry, i.e. on every fault-free run.
                    let transition = self.health.record_fulfillment(region, now);
                    self.trace_breaker(now, transition);
                    self.tracer.record(
                        now,
                        TraceEvent::Launched {
                            workload: w,
                            region,
                            spot: true,
                            instance: launch.instance,
                        },
                    );
                    self.start_execution(w, region, launch.instance, launch.ready_at, launch.interruption_at, now, scheduler);
                }
                Ok(SpotRequestOutcome::OpenNoCapacity) => {
                    // Natural no-capacity and blackout-blocked requests are
                    // indistinguishable at the API; only chaos-attributed
                    // rejections strike the breaker, so fault-free runs
                    // never grow a ledger entry.
                    let blackout = self
                        .chaos
                        .as_ref()
                        .is_some_and(|c| c.is_blackout(region, now));
                    if blackout {
                        self.tracer.record(
                            now,
                            TraceEvent::ChaosFault { kind: "spot_blackout", region: Some(region) },
                        );
                        let transition = self.health.record_rejection(region, now);
                        self.trace_breaker(now, transition);
                    }
                    self.tracer
                        .record(now, TraceEvent::RequestOpen { workload: w, region, blackout });
                    // The Controller's periodic sweep picks it back up.
                    scheduler.schedule_in(self.config.retry_interval, Event::Retry(w));
                }
                // A failed request (e.g. a region knocked out from under
                // an in-flight placement) also lands on the retry sweep
                // instead of killing the run.
                Err(_) => {
                    if self.chaos.is_some() {
                        let transition = self.health.record_rejection(region, now);
                        self.trace_breaker(now, transition);
                    }
                    self.tracer.record(now, TraceEvent::RequestFailed { workload: w, region });
                    scheduler.schedule_in(self.config.retry_interval, Event::Retry(w));
                }
            },
            Placement::OnDemand(region) => {
                let launch = self
                    .ec2
                    .launch_on_demand(region, itype, now)
                    .expect("on-demand launch always succeeds in offered regions");
                self.note_launch(region);
                self.tracer.record(
                    now,
                    TraceEvent::Launched {
                        workload: w,
                        region,
                        spot: false,
                        instance: launch.instance,
                    },
                );
                self.start_execution(w, region, launch.instance, launch.ready_at, None, now, scheduler);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_execution(
        &mut self,
        w: usize,
        region: Region,
        instance: InstanceId,
        ready_at: SimTime,
        interruption_at: Option<SimTime>,
        now: SimTime,
        scheduler: &mut Scheduler<'_, Event>,
    ) {
        self.workloads[w].launches += 1;
        // Checkpoint workloads resuming mid-flight first re-download the
        // working set from the log bucket.
        let mut exec_start = ready_at;
        if self.workloads[w].spec.kind.is_checkpointable() && self.workloads[w].invocation.units_done() > 0 {
            let key = format!("checkpoints/{}/dataset", self.workloads[w].spec.id);
            match self.config.checkpoint_backend {
                CheckpointBackend::ObjectStore => {
                    if let Ok((_, outcome)) =
                        self.s3.get_object(LOG_BUCKET, &key, region, now, self.ec2.ledger_mut())
                    {
                        exec_start = exec_start.max(outcome.completes_at);
                    }
                }
                CheckpointBackend::SharedFileSystem => {
                    let fs = self.efs_id.expect("efs provisioned for this backend");
                    if let Ok((_, outcome)) =
                        self.efs.read(fs, &key, region, now, self.ec2.ledger_mut())
                    {
                        exec_start = exec_start.max(outcome.completes_at);
                    }
                }
            }
        }
        let remaining = self.workloads[w].invocation.remaining_duration();
        let completion_at = exec_start + remaining;
        self.workloads[w].running = Some(RunningInstance {
            instance,
            region,
            ready_at: exec_start,
        });
        match interruption_at {
            Some(at) if at < completion_at => {
                // Chaos may shorten or lose the two-minute warning; a
                // zero-length notice still fires at the reclaim instant,
                // before the Reclaim event (FIFO), so the upload starts —
                // but can never finish in time and is judged torn.
                let warning = match self.chaos.as_mut() {
                    Some(c) => c.notice_duration(region, at),
                    None => INTERRUPTION_NOTICE,
                };
                if warning < INTERRUPTION_NOTICE {
                    self.tracer.record(
                        now,
                        TraceEvent::ChaosFault { kind: "notice_shortened", region: Some(region) },
                    );
                }
                let notice_at = (at - warning).max(now);
                scheduler.schedule_at(notice_at, Event::Notice(w, instance));
                scheduler.schedule_at(at, Event::Reclaim(w, instance));
            }
            _ => {
                scheduler.schedule_at(completion_at, Event::Complete(w, instance));
            }
        }
    }

    fn note_launch(&mut self, region: Region) {
        *self.launches_by_region.entry(region).or_insert(0) += 1;
    }

    /// The retry sweep. If the pending placement's region has since been
    /// blacked out or quarantined by its breaker, re-ask the strategy for
    /// a target before requesting again — otherwise a migration aimed at
    /// a now-dead region would spin on it until the fault lifts.
    fn handle_retry(&mut self, w: usize, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        if self.workloads[w].completed_at.is_some() || self.workloads[w].running.is_some() {
            return;
        }
        if let Placement::Spot(region) = self.workloads[w].placement {
            let blacked_out = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.is_blackout(region, now));
            if blacked_out || self.health.is_quarantined(region, now) {
                let placement = self.relocate(w, now, region);
                self.workloads[w].placement = placement;
            }
        }
        self.handle_launch(w, now, scheduler);
    }

    fn handle_notice(&mut self, w: usize, instance: InstanceId, now: SimTime) {
        let Some(running) = &self.workloads[w].running else {
            return;
        };
        if running.instance != instance || !self.workloads[w].spec.kind.is_checkpointable() {
            return;
        }
        let region = running.region;
        let ready_at = running.ready_at;
        // Units completed through the notice instant are what survives.
        let elapsed = now.saturating_duration_since(ready_at);
        let units_done = self.workloads[w].invocation.units_done()
            + self.workloads[w]
                .invocation
                .plan()
                .units_completed_within(self.workloads[w].invocation.units_done(), elapsed);
        // Persist the progress record and upload the working set. Neither
        // write is trusted yet: durability is judged at the reclaim —
        // an upload still in flight then is torn and never resumed from.
        let spec_id = self.workloads[w].spec.id.clone();
        let generation = self.workloads[w].checkpoints.next_generation;
        self.workloads[w].checkpoints.next_generation += 1;
        self.telemetry.writes += 1;
        let policy = BackoffPolicy::default();

        // KV progress record, retried with jittered backoff when throttled.
        let (kv, ec2, rng) = (&mut self.kv, &mut self.ec2, &mut self.backoff_rng);
        let record = retry_with_backoff(
            &policy,
            rng,
            now,
            |e| matches!(e, KvError::Throttled { .. }),
            |at| {
                kv.update_item("spotverse-checkpoints", &spec_id, at, ec2.ledger_mut(), |item| {
                    item.insert("units_done".into(), aws_stack::AttrValue::N(units_done as f64));
                    item.insert("generation".into(), aws_stack::AttrValue::N(generation as f64));
                    item.insert("at".into(), aws_stack::AttrValue::N(at.as_secs() as f64));
                })
            },
        );
        self.telemetry.throttled_retries += u64::from(record.retries);
        let recorded = record.result.is_ok();

        // The working-set upload starts once the record attempt settled.
        let key = format!("checkpoints/{spec_id}/dataset");
        let completes_at = match self.config.checkpoint_backend {
            CheckpointBackend::ObjectStore => {
                let (s3, ec2, rng) = (&mut self.s3, &mut self.ec2, &mut self.backoff_rng);
                let put = retry_with_backoff(
                    &policy,
                    rng,
                    record.finished_at,
                    |e| matches!(e, ObjectStoreError::Throttled { .. }),
                    |at| {
                        s3.put_object(
                            LOG_BUCKET,
                            key.clone(),
                            ObjectBody::Synthetic {
                                size_gib: bio_workloads::ngs_preprocessing::DATASET_GIB,
                            },
                            region,
                            at,
                            ec2.ledger_mut(),
                        )
                    },
                );
                self.telemetry.throttled_retries += u64::from(put.retries);
                put.result.ok().map(|outcome| outcome.completes_at)
            }
            CheckpointBackend::SharedFileSystem => {
                let fs = self.efs_id.expect("efs provisioned for this backend");
                self.efs
                    .write(
                        fs,
                        key,
                        bio_workloads::ngs_preprocessing::DATASET_GIB,
                        region,
                        record.finished_at,
                        self.ec2.ledger_mut(),
                    )
                    .ok()
                    .map(|outcome| outcome.completes_at)
            }
        };
        self.tracer.record(
            now,
            TraceEvent::CheckpointSave { workload: w, generation, units: units_done, recorded },
        );
        match completes_at {
            Some(completes_at) => {
                self.workloads[w].checkpoints.pending = Some(PendingCheckpoint {
                    generation,
                    units: units_done,
                    completes_at,
                    recorded,
                });
            }
            // Throttled out before the upload even started: nothing to
            // judge at reclaim, the generation is simply lost.
            None => {
                self.telemetry.torn_writes += 1;
                self.tracer.record(now, TraceEvent::CheckpointTorn { workload: w, generation });
            }
        }
    }

    /// Judges the in-flight checkpoint at a reclaim and pins the
    /// invocation to the newest durable, uncorrupted generation.
    ///
    /// A pending upload only becomes durable if it finished before the
    /// reclaim *and* its KV record landed — a 0-second notice starts the
    /// upload at the reclaim instant, so it is always torn. Durable
    /// generations that read back corrupt are discarded in favour of
    /// older ones; with none left the workload restarts from scratch.
    fn settle_checkpoints(&mut self, w: usize, now: SimTime) {
        if let Some(p) = self.workloads[w].checkpoints.pending.take() {
            if p.recorded && p.completes_at <= now {
                self.workloads[w].checkpoints.durable.push(DurableCheckpoint {
                    generation: p.generation,
                    units: p.units,
                    written_at: p.completes_at,
                });
            } else {
                self.telemetry.torn_writes += 1;
                self.tracer
                    .record(now, TraceEvent::CheckpointTorn { workload: w, generation: p.generation });
            }
        }
        let prior = self.workloads[w].invocation.units_done();
        let mut dropped = 0u64;
        let resume_units = loop {
            let Some(top) = self.workloads[w].checkpoints.durable.last().copied() else {
                break 0;
            };
            let corrupt = self.chaos.as_ref().is_some_and(|c| {
                c.checkpoint_corrupted(&self.workloads[w].spec.id, top.generation, top.written_at)
            });
            if corrupt {
                dropped += 1;
                self.workloads[w].checkpoints.durable.pop();
                self.tracer.record(
                    now,
                    TraceEvent::ChaosFault { kind: "checkpoint_corruption", region: None },
                );
            } else {
                break top.units;
            }
        };
        self.telemetry.corrupt_reads += dropped;
        if dropped > 0 && resume_units > 0 {
            self.telemetry.generation_fallbacks += 1;
        }
        let scratch = resume_units == 0 && prior > 0;
        if scratch {
            self.telemetry.scratch_restarts += 1;
        }
        self.tracer.record(
            now,
            TraceEvent::CheckpointRestore {
                workload: w,
                units: resume_units,
                corrupt_dropped: dropped,
                scratch,
            },
        );
        self.workloads[w]
            .invocation
            .resume_from(resume_units)
            .expect("checkpoint within plan");
    }

    fn handle_reclaim(
        &mut self,
        w: usize,
        instance: InstanceId,
        now: SimTime,
        scheduler: &mut Scheduler<'_, Event>,
    ) {
        let Some(running) = &self.workloads[w].running else {
            return;
        };
        if running.instance != instance {
            return;
        }
        let region = running.region;
        let ready_at = running.ready_at;
        self.workloads[w].running = None;

        // Account the interruption.
        self.interruptions.increment(now);
        *self.interruptions_by_region.entry(region).or_insert(0) += 1;
        // Interruptions strike the breaker only while the region is under
        // active chaos stress (blackout or hazard inflation) — natural
        // market interruptions are the paper's normal operating regime,
        // not a health signal, and must not perturb fault-free runs.
        if self.chaos.as_ref().is_some_and(|c| {
            c.is_blackout(region, now) || c.overlay().hazard_multiplier(region, now) != 1.0
        }) {
            self.tracer.record(
                now,
                TraceEvent::ChaosFault { kind: "chaos_interruption", region: Some(region) },
            );
            let transition = self.health.record_interruption(region, now);
            self.trace_breaker(now, transition);
        }

        // Bill the terminated instance. (Billing first lets the trace
        // stamp the interruption with its cost before the checkpoint
        // settlement events; the ledger only sums, so the same-instant
        // order is observationally irrelevant otherwise.)
        let billed = self
            .ec2
            .terminate(instance, now, TerminationReason::Interrupted)
            .expect("reclaimed instance was running");
        self.tracer.record(
            now,
            TraceEvent::Interrupted { workload: w, region, instance, billed: billed.amount() },
        );

        // Progress bookkeeping: checkpoint workloads resume from the last
        // *durable, valid* generation; standard workloads lose everything.
        if self.workloads[w].spec.kind.is_checkpointable() {
            self.settle_checkpoints(w, now);
        } else {
            let elapsed = now.saturating_duration_since(ready_at);
            let _ = self.workloads[w].invocation.record_execution(elapsed);
        }
        self.workloads[w].invocation.handle_interruption();

        // Log the interruption.
        let log_key = format!("interruptions/{}/{}", self.workloads[w].spec.id, instance);
        // Activity logging is best-effort: a throttled put loses the log
        // line, never the run.
        if self
            .s3
            .put_object(
                LOG_BUCKET,
                log_key,
                ObjectBody::from_text(format!("{instance} reclaimed in {region} at {now}")),
                region,
                now,
                self.ec2.ledger_mut(),
            )
            .is_err()
        {
            self.telemetry.throttled_retries += 1;
        }

        // The interruption handler (EventBridge → Step Functions → Lambda)
        // picks the migration target and issues the new request.
        let handler_done = {
            let ledger = self.ec2.ledger_mut();
            self.functions
                .invoke(INTERRUPTION_HANDLER, now, RetryPolicy::default(), ledger, |_| Ok(()))
                .map(|o| o.finished_at)
                .unwrap_or(now)
        };
        let placement = self.relocate(w, now, region);
        self.workloads[w].placement = placement;
        scheduler.schedule_at(handler_done.max(now), Event::Launch(w));
    }

    fn handle_complete(
        &mut self,
        w: usize,
        instance: InstanceId,
        now: SimTime,
    ) {
        let Some(running) = &self.workloads[w].running else {
            return;
        };
        if running.instance != instance {
            return;
        }
        let region = running.region;
        let ready_at = running.ready_at;
        self.workloads[w].running = None;
        let elapsed = now.saturating_duration_since(ready_at);
        let progress = self.workloads[w]
            .invocation
            .record_execution(elapsed)
            .expect("completion on a running invocation");
        debug_assert!(progress.finished, "completion event fired early");
        let billed = self
            .ec2
            .terminate(instance, now, TerminationReason::Completed)
            .expect("completed instance was running");
        self.tracer.record(
            now,
            TraceEvent::Completed { workload: w, region, instance, billed: billed.amount() },
        );
        self.workloads[w].completed_at = Some(now);
        self.completed += 1;
        self.completions.increment(now);
        // Clear any checkpoint state.
        if self.workloads[w].spec.kind.is_checkpointable() {
            let spec_id = self.workloads[w].spec.id.clone();
            let ledger = self.ec2.ledger_mut();
            let _ = self.kv.update_item("spotverse-checkpoints", &spec_id, now, ledger, |item| {
                item.insert("completed".into(), aws_stack::AttrValue::Bool(true));
            });
        }
    }

    fn handle_monitor_tick(&mut self, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        if self.done() {
            return;
        }
        match self.run_monitor_collection(now) {
            Ok(_) => {
                self.note_collection_success(now);
                self.monitor_backoff = 0;
                scheduler.schedule_in(self.config.monitor_period, Event::MonitorTick);
            }
            Err(e) if e.is_retryable() => {
                // Back off with jitter, bounded by the normal period, and
                // try the collection again — decisions meanwhile run on
                // the last good snapshot.
                self.note_collection_failure();
                self.tracer.record(now, TraceEvent::CollectionFailed { retryable: true });
                self.telemetry.throttled_retries += 1;
                let policy = BackoffPolicy {
                    max_attempts: u32::MAX,
                    base: SimDuration::from_secs(30),
                    cap: SimDuration::from_mins(8),
                };
                let delay = policy
                    .delay(self.monitor_backoff, &mut self.backoff_rng)
                    .min(self.config.monitor_period);
                self.monitor_backoff = (self.monitor_backoff + 1).min(8);
                scheduler.schedule_in(delay, Event::MonitorTick);
            }
            // Non-retryable failures (the market refusing a read) don't
            // kill the run either: decisions keep serving the last good
            // snapshot — degrading past the TTL — and the next scheduled
            // tick tries again.
            Err(_) => {
                self.note_collection_failure();
                self.tracer.record(now, TraceEvent::CollectionFailed { retryable: false });
                scheduler.schedule_in(self.config.monitor_period, Event::MonitorTick);
            }
        }
    }
}

impl Model for ExperimentModel {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, scheduler: &mut Scheduler<'_, Event>) {
        if now >= self.deadline {
            self.aborted = true;
            return;
        }
        match event {
            Event::Start => self.handle_start(now, scheduler),
            Event::Launch(w) => self.handle_launch(w, now, scheduler),
            Event::Retry(w) => self.handle_retry(w, now, scheduler),
            Event::Notice(w, instance) => self.handle_notice(w, instance, now),
            Event::Reclaim(w, instance) => self.handle_reclaim(w, instance, now, scheduler),
            Event::Complete(w, instance) => self.handle_complete(w, instance, now),
            Event::MonitorTick => self.handle_monitor_tick(now, scheduler),
        }
    }
}

/// The degraded-mode placement: the cheapest on-demand region by price,
/// ties broken by region name. On-demand prices are static catalog data,
/// so they stay trustworthy even when every dynamic metric has expired.
fn cheapest_on_demand(assessments: &[RegionAssessment]) -> Region {
    assessments
        .iter()
        .min_by(|a, b| {
            a.on_demand_price
                .rate()
                .total_cmp(&b.on_demand_price.rate())
                .then_with(|| a.region.name().cmp(b.region.name()))
        })
        .expect("assessments cover at least one region")
        .region
}

/// Runs one experiment, building a fresh market from the config.
pub fn run_experiment(config: ExperimentConfig, strategy: Box<dyn Strategy>) -> ExperimentReport {
    let market = Arc::new(SpotMarket::new(config.market));
    run_experiment_on(market, config, strategy)
}

/// Runs one experiment against a shared market, so several strategies can
/// be compared on the identical market trajectory.
///
/// # Panics
///
/// Panics if the market was built from a different [`MarketConfig`] than
/// the experiment's, or if the fleet is empty.
pub fn run_experiment_on(
    market: Arc<SpotMarket>,
    config: ExperimentConfig,
    strategy: Box<dyn Strategy>,
) -> ExperimentReport {
    assert_eq!(
        market.config(),
        config.market,
        "shared market must match the experiment's market config"
    );
    assert!(!config.workloads.is_empty(), "empty workload fleet");

    let root_rng = SimRng::seed_from_u64(config.seed);
    let mut ec2 = Ec2::new(Arc::clone(&market), Ec2Config::default(), root_rng.fork("ec2"));
    let monitor = Monitor::new(config.instance_type, Region::UsEast1);
    let chaos_engine = config
        .chaos
        .as_ref()
        .map(|scenario| ChaosEngine::new(scenario, config.seed, config.start));
    if let Some(engine) = &chaos_engine {
        ec2.set_fault_injector(engine.compute_injector());
    }

    let mut model = ExperimentModel {
        market,
        ec2,
        s3: ObjectStore::new(),
        efs: SharedFileSystem::new(),
        efs_id: None,
        kv: KvStore::new(),
        functions: FunctionRuntime::new(),
        metrics: MetricsService::new(Region::UsEast1),
        monitor,
        monitor_memo: SnapshotMemo::new(),
        strategy,
        strategy_rng: root_rng.fork("strategy"),
        workloads: config
            .workloads
            .iter()
            .map(|spec| {
                let workflow = spec.build_workflow();
                WorkloadRuntime {
                    spec: spec.clone(),
                    invocation: WorkflowInvocation::new(&workflow),
                    placement: Placement::Spot(Region::UsEast1), // overwritten at Start
                    running: None,
                    completed_at: None,
                    launches: 0,
                    checkpoints: CheckpointLog::default(),
                }
            })
            .collect(),
        completed: 0,
        interruptions: CumulativeCounter::new("interruptions"),
        interruptions_by_region: BTreeMap::new(),
        completions: CumulativeCounter::new("completions"),
        launches_by_region: BTreeMap::new(),
        deadline: config.start + config.max_runtime,
        aborted: false,
        chaos: chaos_engine,
        telemetry: CheckpointTelemetry::default(),
        backoff_rng: root_rng.fork("backoff"),
        monitor_backoff: 0,
        health: RegionHealth::new(config.health.breaker.clone(), config.seed),
        freshness: TelemetryFreshness::default(),
        quarantined_decisions: 0,
        collect_failing: false,
        degraded_since: None,
        tracer: Tracer::new(&config.trace),
        config,
    };

    // Hand each managed service its own seeded fault stream.
    if let Some(engine) = &model.chaos {
        model.kv.set_fault_injector(engine.service_injector("kv"));
        model.s3.set_fault_injector(engine.service_injector("s3"));
        model
            .functions
            .set_fault_injector(engine.service_injector("fn"));
    }

    // Provision the serverless stack.
    model.monitor.provision(&mut model.functions, &mut model.kv);
    model
        .functions
        .register(INTERRUPTION_HANDLER, Region::UsEast1, FunctionConfig::default());
    model
        .s3
        .create_bucket(LOG_BUCKET, Region::UsEast1)
        .expect("fresh object store");
    model
        .kv
        .create_table("spotverse-checkpoints", Region::UsEast1)
        .expect("fresh kv store");
    if model.config.checkpoint_backend == CheckpointBackend::SharedFileSystem {
        let fs = model.efs.create(Region::UsEast1);
        for region in Region::ALL {
            model.efs.mount(fs, region).expect("fresh filesystem");
        }
        model.efs_id = Some(fs);
    }

    let start = model.config.start;
    if model.tracer.enabled() {
        let event = TraceEvent::RunStarted {
            strategy: model.strategy.name().to_owned(),
            seed: model.config.seed,
            workloads: model.workloads.len(),
            chaos: model.config.chaos.as_ref().map(|s| s.name().to_owned()),
        };
        model.tracer.record(start, event);
    }
    let mut sim = Simulation::new(model);
    sim.schedule_at(start, Event::Start);
    sim.run_until(|m| m.done());
    let final_time = sim.now();
    let mut model = sim.into_model();

    // A run that ends while still degraded closes its interval here.
    if let Some(since) = model.degraded_since.take() {
        let duration = final_time.saturating_duration_since(since);
        model.freshness.degraded_time += duration;
        model.tracer.record(final_time, TraceEvent::DegradedInterval { duration });
    }
    model.tracer.record(
        final_time,
        TraceEvent::RunEnded { completed: model.completed, aborted: model.aborted },
    );
    let trace = std::mem::replace(&mut model.tracer, Tracer::disabled()).finish(start);
    let resilience = ResilienceTelemetry {
        breaker_trips: model.health.trips(),
        half_open_probes: model.health.probes(),
        probe_failures: model.health.probe_failures(),
        quarantined_decisions: model.quarantined_decisions,
        freshness: model.freshness,
    };

    // Assemble the report.
    let completed_times: Vec<SimDuration> = model
        .workloads
        .iter()
        .filter_map(|w| w.completed_at)
        .map(|at| at - start)
        .collect();
    let makespan = completed_times
        .iter()
        .copied()
        .max()
        .unwrap_or(SimDuration::ZERO);
    let mean_completion = if completed_times.is_empty() {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(
            completed_times.iter().map(|d| d.as_secs()).sum::<u64>()
                / completed_times.len() as u64,
        )
    };
    let ledger = model.ec2.ledger();
    let shared = ledger.total_for_service(ServiceKind::FunctionRuntime)
        + ledger.total_for_service(ServiceKind::KvStore)
        + ledger.total_for_service(ServiceKind::Metrics)
        + ledger.total_for_service(ServiceKind::ObjectStorage);
    let cost = CostBreakdown {
        total: ledger.total(),
        spot_instances: ledger.total_for_service(ServiceKind::SpotInstance),
        on_demand_instances: ledger.total_for_service(ServiceKind::OnDemandInstance),
        data_transfer: ledger.total_for_service(ServiceKind::DataTransfer),
        shared_services: shared,
    };
    let instance_hours: f64 = model
        .ec2
        .instances()
        .iter()
        .map(|r| match r.state() {
            cloud_compute::InstanceState::Terminated { at, .. } => {
                (at - r.launched_at()).as_hours_f64()
            }
            cloud_compute::InstanceState::Running => {
                final_time.saturating_duration_since(r.launched_at()).as_hours_f64()
            }
        })
        .sum();

    ExperimentReport {
        strategy: model.strategy.name().to_owned(),
        workloads: model.workloads.len(),
        completed: model.completed,
        makespan,
        mean_completion,
        interruptions: model.interruptions.count(),
        interruptions_by_region: model.interruptions_by_region,
        cumulative_interruptions: model.interruptions.series().clone(),
        completions_over_time: model.completions.series().clone(),
        launches_by_region: model.launches_by_region,
        cost,
        instance_hours,
        spot_attempts: model.ec2.spot_attempts(),
        spot_fulfillments: model.ec2.spot_fulfillments(),
        checkpoints: model.telemetry,
        resilience,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_workloads::{paper_fleet, WorkloadKind};
    use cloud_market::Region;

    use crate::config::{InitialPlacement, SpotVerseConfig};
    use crate::strategy::{
        OnDemandStrategy, SingleRegionStrategy, SpotVerseStrategy,
    };

    fn small_fleet(kind: WorkloadKind, n: usize, seed: u64) -> ExperimentConfig {
        let rng = SimRng::seed_from_u64(seed);
        let fleet = paper_fleet(kind, n, &rng);
        ExperimentConfig::new(seed, InstanceType::M5Xlarge, fleet)
    }

    #[test]
    fn on_demand_fleet_completes_exactly_on_time() {
        let config = small_fleet(WorkloadKind::GenomeReconstruction, 5, 11);
        let durations: Vec<SimDuration> = config.workloads.iter().map(|w| w.duration).collect();
        let report = run_experiment(config, Box::new(OnDemandStrategy::new()));
        assert_eq!(report.completed, 5);
        assert_eq!(report.interruptions, 0);
        assert_eq!(report.cost.spot_instances, Usd::ZERO);
        assert!(report.cost.on_demand_instances > Usd::ZERO);
        // Makespan = longest workload + boot (150 s).
        let expected = *durations.iter().max().unwrap() + SimDuration::from_secs(150);
        assert_eq!(report.makespan, expected);
        assert_eq!(report.spot_attempts, 0);
    }

    #[test]
    fn single_region_unstable_market_interrupts_and_recovers() {
        let config = small_fleet(WorkloadKind::GenomeReconstruction, 8, 12);
        let report = run_experiment(
            config,
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert_eq!(report.completed, 8, "all workloads eventually finish");
        assert!(report.interruptions > 0, "ca-central-1 is interruption-prone");
        assert_eq!(
            report.interruptions_by_region.keys().copied().collect::<Vec<_>>(),
            vec![Region::CaCentral1],
            "single-region interruptions stay in one region"
        );
        assert!(report.makespan > SimDuration::from_hours(10));
        assert!(report.cost.total > Usd::ZERO);
    }

    #[test]
    fn spotverse_beats_single_region_on_interruptions() {
        let seed = 13;
        let single = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 20, seed),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let spotverse = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 20, seed),
            Box::new(SpotVerseStrategy::new(
                SpotVerseConfig::builder(InstanceType::M5Xlarge)
                    .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
                    .build(),
            )),
        );
        assert_eq!(spotverse.completed, 20);
        assert!(
            spotverse.interruptions < single.interruptions,
            "spotverse {} vs single {}",
            spotverse.interruptions,
            single.interruptions
        );
        assert!(
            spotverse.makespan < single.makespan,
            "spotverse {} vs single {}",
            spotverse.makespan,
            single.makespan
        );
        // SpotVerse migrated away: interruptions span multiple regions or
        // at least launches do.
        assert!(spotverse.launches_by_region.len() > 1);
    }

    #[test]
    fn checkpoint_workloads_lose_less_time_than_standard() {
        let seed = 14;
        let standard = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 8, seed),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let checkpoint = run_experiment(
            small_fleet(WorkloadKind::NgsPreprocessing, 8, seed),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert_eq!(checkpoint.completed, 8);
        assert!(
            checkpoint.mean_completion < standard.mean_completion,
            "checkpoint {} vs standard {}",
            checkpoint.mean_completion,
            standard.mean_completion
        );
        // Checkpoint uploads appear as data-transfer + kv spend.
        assert!(checkpoint.cost.shared_services > Usd::ZERO);
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let a = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 6, 15),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let b = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 6, 15),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert_eq!(a.interruptions, b.interruptions);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cost.total, b.cost.total);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn shared_market_requires_matching_config() {
        let config = small_fleet(WorkloadKind::GenomeReconstruction, 2, 16);
        let other_market = Arc::new(SpotMarket::new(MarketConfig::with_seed(999)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_experiment_on(other_market, config, Box::new(OnDemandStrategy::new()))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cumulative_series_are_monotone() {
        let report = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 8, 17),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let values: Vec<f64> = report
            .cumulative_interruptions
            .iter()
            .map(|&(_, v)| v)
            .collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            report.completions_over_time.last().map(|(_, v)| v as usize),
            Some(report.completed)
        );
        assert_eq!(report.completion_rate(), 1.0);
    }

    #[test]
    fn fault_free_runs_never_engage_the_control_plane() {
        // Plenty of natural interruptions in ca-central-1, yet no chaos:
        // the breakers, staleness counters, and degraded mode must all
        // stay at zero.
        let report = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 8, 12),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert!(report.interruptions > 0);
        assert_eq!(report.resilience, ResilienceTelemetry::default());
    }

    #[test]
    fn tracing_is_purely_observational() {
        let base = small_fleet(WorkloadKind::GenomeReconstruction, 5, 12);
        let plain = run_experiment(
            base.clone(),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let mut traced_cfg = base;
        traced_cfg.trace = TraceConfig::enabled();
        let mut traced = run_experiment(
            traced_cfg,
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let trace = traced.trace.take().expect("tracing was enabled");
        assert!(plain.trace.is_none(), "tracing is off by default");
        assert_eq!(plain, traced, "tracing must not change any other report field");
        assert!(matches!(trace.events.first().unwrap().event, TraceEvent::RunStarted { .. }));
        assert!(matches!(trace.events.last().unwrap().event, TraceEvent::RunEnded { .. }));
        assert_eq!(trace.stats.interruptions, traced.interruptions);
        assert_eq!(
            trace.count_matching(|e| matches!(e, TraceEvent::Interrupted { .. })),
            traced.interruptions
        );
    }

    #[test]
    fn traced_spotverse_decisions_carry_candidate_verdicts() {
        let mut config = small_fleet(WorkloadKind::GenomeReconstruction, 4, 13);
        config.trace = TraceConfig::enabled();
        let report = run_experiment(
            config,
            Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
                InstanceType::M5Xlarge,
            ))),
        );
        let trace = report.trace.expect("tracing was enabled");
        let initial = trace
            .events
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::Decision { kind: DecisionKind::Initial, candidates, placements, .. } => {
                    Some((candidates.clone(), placements.clone()))
                }
                _ => None,
            })
            .expect("initial decision recorded");
        let (candidates, placements) = initial;
        assert_eq!(placements.len(), report.workloads);
        let candidates = candidates.expect("spotverse explains its candidates");
        assert!(!candidates.is_empty());
        // Every spot placement must target a region the explanation selected.
        use crate::optimizer::CandidateOutcome;
        for p in placements.iter().filter(|p| p.is_spot()) {
            assert!(
                candidates.iter().any(|c| c.region == p.region()
                    && matches!(c.outcome, CandidateOutcome::Selected { .. })),
                "placement {p:?} not among selected candidates"
            );
        }
    }

    #[test]
    fn interruption_total_matches_regional_sum() {
        let report = run_experiment(
            small_fleet(WorkloadKind::GenomeReconstruction, 10, 18),
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        let regional: u64 = report.interruptions_by_region.values().sum();
        assert_eq!(regional, report.interruptions);
    }
}
