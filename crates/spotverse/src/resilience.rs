//! Bounded exponential backoff with jitter for throttled control-plane
//! calls.
//!
//! Under chaos scenarios the managed services can return throttling
//! errors; the hardened Controller retries those with capped exponential
//! backoff and equal jitter instead of panicking. On the fault-free path
//! the first attempt succeeds and **no randomness is consumed**, so
//! installing the policy changes nothing.

use sim_kernel::{SimDuration, SimRng, SimTime};

/// A bounded exponential-backoff policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts (first try + retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Upper bound on any single backoff.
    pub cap: SimDuration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 4,
            base: SimDuration::from_secs(2),
            cap: SimDuration::from_secs(30),
        }
    }
}

impl BackoffPolicy {
    /// The jittered backoff before retry number `retry` (0-based):
    /// half the capped exponential deterministically, half drawn
    /// uniformly ("equal jitter").
    pub fn delay(&self, retry: u32, rng: &mut SimRng) -> SimDuration {
        let exp = self
            .base
            .as_secs()
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX))
            .min(self.cap.as_secs())
            .max(1);
        let half = exp / 2;
        SimDuration::from_secs(half + rng.uniform_u64(exp - half + 1))
    }
}

/// The result of a retried call.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// The final attempt's result.
    pub result: Result<T, E>,
    /// When the final attempt ran (`now` + accumulated backoff).
    pub finished_at: SimTime,
    /// How many retries were taken (0 on first-attempt success).
    pub retries: u32,
}

/// Calls `call` at `now`, retrying with jittered exponential backoff
/// while `retryable` holds for the error, up to the policy's attempt
/// budget. Each retry advances the effective call time by the backoff.
pub fn retry_with_backoff<T, E>(
    policy: &BackoffPolicy,
    rng: &mut SimRng,
    now: SimTime,
    mut retryable: impl FnMut(&E) -> bool,
    mut call: impl FnMut(SimTime) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    let mut at = now;
    let mut retries = 0;
    loop {
        match call(at) {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    finished_at: at,
                    retries,
                }
            }
            Err(e) => {
                if retries + 1 >= policy.max_attempts || !retryable(&e) {
                    return RetryOutcome {
                        result: Err(e),
                        finished_at: at,
                        retries,
                    };
                }
                at += policy.delay(retries, rng);
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(9)
    }

    #[test]
    fn first_attempt_success_consumes_no_rng() {
        let mut r = rng();
        let before = r.clone().next_u64();
        let out = retry_with_backoff(
            &BackoffPolicy::default(),
            &mut r,
            SimTime::from_hours(1),
            |_: &&str| true,
            Ok::<_, &str>,
        );
        assert_eq!(out.retries, 0);
        assert_eq!(out.finished_at, SimTime::from_hours(1));
        assert_eq!(r.clone().next_u64(), before);
    }

    #[test]
    fn retries_until_success_advancing_time() {
        let mut r = rng();
        let mut calls = 0;
        let out = retry_with_backoff(
            &BackoffPolicy::default(),
            &mut r,
            SimTime::ZERO,
            |_: &&str| true,
            |at| {
                calls += 1;
                if calls < 3 {
                    Err("throttled")
                } else {
                    Ok(at)
                }
            },
        );
        assert_eq!(out.retries, 2);
        assert!(out.result.is_ok());
        assert!(out.finished_at > SimTime::ZERO);
    }

    #[test]
    fn gives_up_after_attempt_budget() {
        let mut r = rng();
        let mut calls = 0;
        let out = retry_with_backoff(
            &BackoffPolicy::default(),
            &mut r,
            SimTime::ZERO,
            |_: &&str| true,
            |_| -> Result<(), &str> {
                calls += 1;
                Err("throttled")
            },
        );
        assert_eq!(calls, 4);
        assert!(out.result.is_err());
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let mut r = rng();
        let mut calls = 0;
        let out = retry_with_backoff(
            &BackoffPolicy::default(),
            &mut r,
            SimTime::ZERO,
            |e: &&str| *e == "throttled",
            |_| -> Result<(), &str> {
                calls += 1;
                Err("no such table")
            },
        );
        assert_eq!(calls, 1);
        assert_eq!(out.retries, 0);
        assert!(out.result.is_err());
    }

    #[test]
    fn delay_is_bounded_by_cap() {
        let policy = BackoffPolicy::default();
        let mut r = rng();
        for retry in 0..10 {
            let d = policy.delay(retry, &mut r);
            assert!(d <= policy.cap);
            assert!(d >= SimDuration::ZERO);
        }
    }
}
