//! The Optimizer: the paper's Algorithm 1 ("SpotVerse Workload
//! Management").
//!
//! Regions are assessed by a combined score — Spot Placement Score (1–10)
//! plus Stability Score (1–3) — filtered by a threshold `T`, sorted by spot
//! price ascending, and capped at `R` regions. Initial workloads are
//! assigned round-robin over the selection; an interrupted workload
//! migrates to a uniformly random member after excluding the region it was
//! interrupted in. When no region meets the threshold, the workload falls
//! back to the cheapest on-demand instance.

use cloud_market::{CombinedScore, PlacementScore, Region, StabilityScore, UsdPerHour};
use serde::{Deserialize, Serialize};
use sim_kernel::SimRng;

use crate::config::SpotVerseConfig;

/// One region's assessment at a decision instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionAssessment {
    /// The assessed region.
    pub region: Region,
    /// Spot Placement Score.
    pub placement: PlacementScore,
    /// Stability Score (inverse of Interruption Frequency).
    pub stability: StabilityScore,
    /// Current spot price.
    pub spot_price: UsdPerHour,
    /// Current on-demand price.
    pub on_demand_price: UsdPerHour,
}

impl RegionAssessment {
    /// The combined score Algorithm 1 ranks on.
    pub fn combined(&self) -> CombinedScore {
        CombinedScore::new(self.placement, self.stability)
    }
}

/// Where Algorithm 1 decides to run something.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// A spot instance in the region.
    Spot(Region),
    /// An on-demand instance in the region (threshold fallback).
    OnDemand(Region),
}

impl Placement {
    /// The target region.
    pub fn region(self) -> Region {
        match self {
            Placement::Spot(r) | Placement::OnDemand(r) => r,
        }
    }

    /// Whether this is a spot placement.
    pub fn is_spot(self) -> bool {
        matches!(self, Placement::Spot(_))
    }
}

/// Why a region did (or did not) make a selection — the per-candidate
/// audit record attached to traced decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// Selected, with its 0-based rank in the price-sorted top-R.
    Selected {
        /// Position in the selection (0 = cheapest).
        rank: usize,
    },
    /// Dropped by the health exclusion list before scoring.
    Quarantined,
    /// Outside the configured preferred-regions set.
    NotPreferred,
    /// Combined score below the threshold `T`.
    BelowThreshold,
    /// Qualified but priced out of the top-R cap.
    OverCap,
    /// Excluded as the region the workload was just interrupted in.
    InterruptedHere,
}

impl CandidateOutcome {
    /// Canonical lowercase label used in trace exports.
    pub fn label(self) -> String {
        match self {
            CandidateOutcome::Selected { rank } => format!("selected:{rank}"),
            CandidateOutcome::Quarantined => "quarantined".to_owned(),
            CandidateOutcome::NotPreferred => "not-preferred".to_owned(),
            CandidateOutcome::BelowThreshold => "below-threshold".to_owned(),
            CandidateOutcome::OverCap => "over-cap".to_owned(),
            CandidateOutcome::InterruptedHere => "interrupted-here".to_owned(),
        }
    }
}

/// One assessed region's fate in a selection decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateVerdict {
    /// The assessed region.
    pub region: Region,
    /// Its combined score at the decision instant.
    pub combined: u8,
    /// Its spot price ($/h) at the decision instant.
    pub spot_price: f64,
    /// Why it was selected or rejected.
    pub outcome: CandidateOutcome,
}

/// How an interrupted workload picks its next region among the selected
/// top-R — Algorithm 1 uses [`MigrationPolicy::RandomTopR`]; the other
/// variants exist for the component-ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPolicy {
    /// The paper's policy: uniformly random among the top-R (spreads
    /// migrating workloads instead of dog-piling the cheapest survivor).
    RandomTopR,
    /// Always the cheapest qualifying region (ablation: no randomization).
    CheapestQualifying,
    /// Relaunch in the interrupted region (ablation: no migration at all).
    StayPut,
}

/// The Optimizer component.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimizer {
    config: SpotVerseConfig,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SpotVerseConfig) -> Self {
        Optimizer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SpotVerseConfig {
        &self.config
    }

    /// `SelectRegions`: admissible regions with combined score ≥ T, sorted
    /// by spot price ascending and capped at `R`.
    ///
    /// `excluded` regions (health quarantine, capacity-full) are dropped
    /// *before* the threshold/top-R selection, so the selection refills
    /// from the next qualifying region instead of silently shrinking.
    /// Pass `&[]` for an unconstrained selection.
    pub fn select_regions(
        &self,
        assessments: &[RegionAssessment],
        excluded: &[Region],
    ) -> Vec<RegionAssessment> {
        let mut selected: Vec<RegionAssessment> = assessments
            .iter()
            .filter(|a| !excluded.contains(&a.region))
            .filter(|a| self.config.allows_region(a.region))
            .filter(|a| a.combined().meets(self.config.threshold()))
            .copied()
            .collect();
        selected.sort_by(|a, b| {
            a.spot_price
                .rate()
                .total_cmp(&b.spot_price.rate())
                .then_with(|| a.region.name().cmp(b.region.name()))
        });
        selected.truncate(self.config.max_regions());
        selected
    }

    /// The cheapest-on-demand fallback across admissible regions.
    ///
    /// # Panics
    ///
    /// Panics if `assessments` is empty (the market always offers at least
    /// one region per instance type).
    pub fn cheapest_on_demand(&self, assessments: &[RegionAssessment]) -> Region {
        assessments
            .iter()
            .filter(|a| self.config.allows_region(a.region))
            .min_by(|a, b| {
                a.on_demand_price
                    .rate()
                    .total_cmp(&b.on_demand_price.rate())
                    .then_with(|| a.region.name().cmp(b.region.name()))
            })
            .expect("cheapest_on_demand: no admissible regions")
            .region
    }

    /// Initial placement for `n` workloads: round-robin over the selected
    /// regions, or all-on-demand when the threshold filters everything out.
    ///
    /// `excluded` regions are dropped before selection (see
    /// [`select_regions`](Optimizer::select_regions)). The on-demand
    /// fallback is deliberately *not* filtered: when every qualifying
    /// region is excluded, a guaranteed-capacity launch in a
    /// sick-for-spot region beats not launching at all.
    pub fn initial_placements(
        &self,
        assessments: &[RegionAssessment],
        n: usize,
        excluded: &[Region],
    ) -> Vec<Placement> {
        let mut out = Vec::with_capacity(n);
        self.initial_placements_into(assessments, n, excluded, &mut out);
        out
    }

    /// [`initial_placements`](Optimizer::initial_placements), appended to
    /// a caller-owned vector (the fleet loop pools one across batches).
    pub fn initial_placements_into(
        &self,
        assessments: &[RegionAssessment],
        n: usize,
        excluded: &[Region],
        out: &mut Vec<Placement>,
    ) {
        let selected = self.select_regions(assessments, excluded);
        if selected.is_empty() {
            let od = self.cheapest_on_demand(assessments);
            out.extend(std::iter::repeat_n(Placement::OnDemand(od), n));
            return;
        }
        out.extend((0..n).map(|i| Placement::Spot(selected[i % selected.len()].region)));
    }

    /// Migration target for a workload interrupted in
    /// `interrupted_region`, under the given policy (Algorithm 1 is
    /// [`MigrationPolicy::RandomTopR`]; the others support the
    /// component-ablation benches): a member of the re-selected top-R
    /// after dropping the interrupted region and every `excluded` region,
    /// or cheapest on-demand when nothing qualifies.
    ///
    /// `StayPut` ignores the exclusion list by design — that ablation
    /// measures "no migration at all", quarantine included. With an empty
    /// list the selection consumes exactly the same RNG draws as an
    /// unconstrained one.
    pub fn migration_target(
        &self,
        assessments: &[RegionAssessment],
        interrupted_region: Region,
        policy: MigrationPolicy,
        excluded: &[Region],
        rng: &mut SimRng,
    ) -> Placement {
        if policy == MigrationPolicy::StayPut {
            return Placement::Spot(interrupted_region);
        }
        // Exclude first, then take the top R — so the selection never
        // silently shrinks below R because of the exclusion.
        let filtered: Vec<RegionAssessment> = assessments
            .iter()
            .filter(|a| a.region != interrupted_region)
            .copied()
            .collect();
        let selected = self.select_regions(&filtered, excluded);
        if selected.is_empty() {
            return Placement::OnDemand(self.cheapest_on_demand(assessments));
        }
        let pick = match policy {
            MigrationPolicy::RandomTopR => rng.pick_index(selected.len()),
            MigrationPolicy::CheapestQualifying => 0,
            MigrationPolicy::StayPut => unreachable!("handled above"),
        };
        Placement::Spot(selected[pick].region)
    }

    /// Explains the selection that
    /// [`select_regions`](Optimizer::select_regions)
    /// (after dropping `interrupted`, when migrating) would make: one
    /// verdict per assessed region, in assessment order. Pure — consumes
    /// no RNG and mutates nothing — so the trace layer can call it without
    /// perturbing determinism. The `Selected` verdicts reproduce the real
    /// selection exactly, rank included.
    pub fn explain_selection(
        &self,
        assessments: &[RegionAssessment],
        excluded: &[Region],
        interrupted: Option<Region>,
    ) -> Vec<CandidateVerdict> {
        let eligible: Vec<RegionAssessment> = assessments
            .iter()
            .filter(|a| Some(a.region) != interrupted)
            .copied()
            .collect();
        let selected = self.select_regions(&eligible, excluded);
        assessments
            .iter()
            .map(|a| {
                let outcome = if Some(a.region) == interrupted {
                    CandidateOutcome::InterruptedHere
                } else if let Some(rank) =
                    selected.iter().position(|s| s.region == a.region)
                {
                    CandidateOutcome::Selected { rank }
                } else if excluded.contains(&a.region) {
                    CandidateOutcome::Quarantined
                } else if !self.config.allows_region(a.region) {
                    CandidateOutcome::NotPreferred
                } else if !a.combined().meets(self.config.threshold()) {
                    CandidateOutcome::BelowThreshold
                } else {
                    CandidateOutcome::OverCap
                };
                CandidateVerdict {
                    region: a.region,
                    combined: a.combined().value(),
                    spot_price: a.spot_price.rate(),
                    outcome,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::InstanceType;

    use crate::config::InitialPlacement;

    fn assessment(region: Region, placement: u8, stability: u8, price: f64) -> RegionAssessment {
        RegionAssessment {
            region,
            placement: PlacementScore::new(placement).unwrap(),
            stability: StabilityScore::new(stability).unwrap(),
            spot_price: UsdPerHour::new(price),
            on_demand_price: UsdPerHour::new(price * 4.0),
        }
    }

    /// The paper's Table 3-like fixture: tiered regions with prices inverse
    /// to score.
    fn fixture() -> Vec<RegionAssessment> {
        vec![
            assessment(Region::ApNortheast3, 7, 3, 0.086), // combined 10
            assessment(Region::UsWest1, 6, 3, 0.088),      // 9
            assessment(Region::EuWest1, 6, 2, 0.092),      // 8
            assessment(Region::EuNorth1, 5, 2, 0.079),     // 7
            assessment(Region::CaCentral1, 4, 1, 0.056),   // 5
            assessment(Region::ApSoutheast1, 4, 1, 0.057), // 5
            assessment(Region::EuWest3, 3, 2, 0.058),      // 5
            assessment(Region::EuWest2, 3, 2, 0.059),      // 5
            assessment(Region::UsEast1, 3, 1, 0.0455),     // 4
            assessment(Region::UsEast2, 3, 1, 0.0450),     // 4
            assessment(Region::ApSoutheast2, 3, 1, 0.047), // 4
            assessment(Region::UsWest2, 3, 1, 0.0465),     // 4
        ]
    }

    fn optimizer(threshold: u8) -> Optimizer {
        Optimizer::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(threshold)
                .max_regions(4)
                .build(),
        )
    }

    #[test]
    fn threshold_6_selects_paper_tier_a() {
        let sel = optimizer(6).select_regions(&fixture(), &[]);
        let regions: Vec<Region> = sel.iter().map(|a| a.region).collect();
        assert_eq!(
            regions,
            vec![
                Region::EuNorth1,
                Region::ApNortheast3,
                Region::UsWest1,
                Region::EuWest1
            ],
            "threshold-6 regions sorted by price ascending"
        );
    }

    #[test]
    fn threshold_5_selects_paper_tier_b() {
        let sel = optimizer(5).select_regions(&fixture(), &[]);
        let regions: Vec<Region> = sel.iter().map(|a| a.region).collect();
        assert_eq!(
            regions,
            vec![
                Region::CaCentral1,
                Region::ApSoutheast1,
                Region::EuWest3,
                Region::EuWest2
            ]
        );
    }

    #[test]
    fn threshold_4_selects_cheapest_overall() {
        let sel = optimizer(4).select_regions(&fixture(), &[]);
        let regions: Vec<Region> = sel.iter().map(|a| a.region).collect();
        assert_eq!(
            regions,
            vec![
                Region::UsEast2,
                Region::UsEast1,
                Region::UsWest2,
                Region::ApSoutheast2
            ]
        );
    }

    #[test]
    fn selection_invariants() {
        for threshold in 2..=13 {
            let opt = optimizer(threshold);
            let sel = opt.select_regions(&fixture(), &[]);
            assert!(sel.len() <= 4);
            assert!(sel.iter().all(|a| a.combined().meets(threshold)));
            assert!(sel
                .windows(2)
                .all(|w| w[0].spot_price.rate() <= w[1].spot_price.rate()));
        }
    }

    #[test]
    fn round_robin_initial_distribution() {
        let placements = optimizer(6).initial_placements(&fixture(), 10, &[]);
        assert_eq!(placements.len(), 10);
        assert!(placements.iter().all(|p| p.is_spot()));
        // Round-robin: workloads 0 and 4 land in the same (cheapest) region.
        assert_eq!(placements[0], placements[4]);
        assert_eq!(placements[0].region(), Region::EuNorth1);
        assert_eq!(placements[1].region(), Region::ApNortheast3);
        // Even spread: each of the 4 regions gets 2 or 3 of 10 workloads.
        for region in [
            Region::EuNorth1,
            Region::ApNortheast3,
            Region::UsWest1,
            Region::EuWest1,
        ] {
            let count = placements.iter().filter(|p| p.region() == region).count();
            assert!((2..=3).contains(&count), "{region}: {count}");
        }
    }

    #[test]
    fn unreachable_threshold_falls_back_to_on_demand() {
        let placements = optimizer(14).initial_placements(&fixture(), 3, &[]);
        assert_eq!(placements.len(), 3);
        for p in &placements {
            assert!(!p.is_spot());
            // The fixture's cheapest on-demand is 4 × 0.0450 (us-east-2).
            assert_eq!(p.region(), Region::UsEast2);
        }
    }

    #[test]
    fn migration_excludes_interrupted_region() {
        let opt = optimizer(6);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = opt.migration_target(&fixture(), Region::ApNortheast3, MigrationPolicy::RandomTopR, &[], &mut rng);
            assert!(p.is_spot());
            assert_ne!(p.region(), Region::ApNortheast3);
        }
    }

    #[test]
    fn migration_visits_all_alternatives() {
        let opt = optimizer(6);
        let mut rng = SimRng::seed_from_u64(6);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(opt.migration_target(&fixture(), Region::EuNorth1, MigrationPolicy::RandomTopR, &[], &mut rng).region());
        }
        // The other three tier-A regions plus eu-west-1's replacement slot.
        assert!(seen.len() >= 3, "random pick should spread: {seen:?}");
        assert!(!seen.contains(&Region::EuNorth1));
    }

    #[test]
    fn migration_falls_back_to_on_demand() {
        let opt = optimizer(14);
        let mut rng = SimRng::seed_from_u64(7);
        let p = opt.migration_target(&fixture(), Region::UsEast1, MigrationPolicy::RandomTopR, &[], &mut rng);
        assert!(!p.is_spot());
    }

    #[test]
    fn preferred_regions_filter_applies() {
        let opt = Optimizer::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(5)
                .preferred_regions(vec![Region::CaCentral1, Region::EuWest3])
                .build(),
        );
        let sel = opt.select_regions(&fixture(), &[]);
        let regions: Vec<Region> = sel.iter().map(|a| a.region).collect();
        assert_eq!(regions, vec![Region::CaCentral1, Region::EuWest3]);
    }

    #[test]
    fn exclusion_happens_before_top_r_cap() {
        // With threshold 4 and R=4, excluding one of the four cheapest must
        // pull in the 5th-cheapest qualifying region rather than shrinking
        // the selection to 3.
        let opt = optimizer(4);
        let mut rng = SimRng::seed_from_u64(8);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            seen.insert(opt.migration_target(&fixture(), Region::UsEast2, MigrationPolicy::RandomTopR, &[], &mut rng).region());
        }
        assert!(seen.contains(&Region::CaCentral1), "5th-cheapest should appear: {seen:?}");
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn migration_policies_differ_as_designed() {
        let opt = optimizer(6);
        let mut rng = SimRng::seed_from_u64(9);
        // StayPut relaunches in place.
        assert_eq!(
            opt.migration_target(
                &fixture(),
                Region::CaCentral1,
                MigrationPolicy::StayPut,
                &[],
                &mut rng
            ),
            Placement::Spot(Region::CaCentral1)
        );
        // CheapestQualifying is deterministic: eu-north-1 is the cheapest
        // threshold-6 region in the fixture.
        for _ in 0..10 {
            assert_eq!(
                opt.migration_target(
                &fixture(),
                Region::ApNortheast3,
                MigrationPolicy::CheapestQualifying,
                &[],
                &mut rng
            ),
                Placement::Spot(Region::EuNorth1)
            );
        }
    }

    #[test]
    fn quarantine_exclusion_refills_the_selection() {
        let opt = optimizer(5);
        // Unexcluded tier-B selection is [ca-central-1, ap-southeast-1,
        // eu-west-3, eu-west-2]; quarantining the cheapest must pull in the
        // next-cheapest qualifying region (eu-north-1), not shrink to 3.
        let sel = opt.select_regions(&fixture(), &[Region::CaCentral1]);
        let regions: Vec<Region> = sel.iter().map(|a| a.region).collect();
        assert_eq!(
            regions,
            vec![Region::ApSoutheast1, Region::EuWest3, Region::EuWest2, Region::EuNorth1]
        );
        assert_eq!(opt.select_regions(&fixture(), &[]), opt.select_regions(&fixture(), &[]));
    }

    #[test]
    fn all_quarantined_falls_back_to_on_demand() {
        let opt = optimizer(6);
        let quarantined = vec![
            Region::EuNorth1,
            Region::ApNortheast3,
            Region::UsWest1,
            Region::EuWest1,
        ];
        let placements = opt.initial_placements(&fixture(), 3, &quarantined);
        for p in &placements {
            assert!(!p.is_spot());
            // The on-demand fallback is not health-filtered.
            assert_eq!(p.region(), Region::UsEast2);
        }
    }

    #[test]
    fn noop_exclusion_consumes_identical_rng() {
        // Excluding a region the threshold already rejects must not change
        // the selection or the number of RNG draws consumed.
        let opt = optimizer(6);
        let mut a = SimRng::seed_from_u64(11);
        let mut b = SimRng::seed_from_u64(11);
        for _ in 0..50 {
            let plain = opt.migration_target(
                &fixture(),
                Region::EuNorth1,
                MigrationPolicy::RandomTopR,
                &[],
                &mut a,
            );
            let excluded = opt.migration_target(
                &fixture(),
                Region::EuNorth1,
                MigrationPolicy::RandomTopR,
                &[Region::UsEast1],
                &mut b,
            );
            assert_eq!(plain, excluded);
        }
    }

    #[test]
    fn migration_avoids_quarantined_regions() {
        let opt = optimizer(6);
        let mut rng = SimRng::seed_from_u64(12);
        for _ in 0..100 {
            let p = opt.migration_target(
                &fixture(),
                Region::EuNorth1,
                MigrationPolicy::RandomTopR,
                &[Region::ApNortheast3],
                &mut rng,
            );
            assert!(p.is_spot());
            assert_ne!(p.region(), Region::EuNorth1);
            assert_ne!(p.region(), Region::ApNortheast3);
        }
    }

    #[test]
    fn explain_agrees_with_selection_for_every_threshold() {
        for threshold in 2..=13 {
            let opt = optimizer(threshold);
            for excluded in [vec![], vec![Region::CaCentral1, Region::UsEast2]] {
                let verdicts = opt.explain_selection(&fixture(), &excluded, None);
                assert_eq!(verdicts.len(), fixture().len(), "one verdict per candidate");
                let mut selected: Vec<(usize, Region)> = verdicts
                    .iter()
                    .filter_map(|v| match v.outcome {
                        CandidateOutcome::Selected { rank } => Some((rank, v.region)),
                        _ => None,
                    })
                    .collect();
                selected.sort_unstable_by_key(|(rank, _)| *rank);
                let real: Vec<Region> = opt
                    .select_regions(&fixture(), &excluded)
                    .iter()
                    .map(|a| a.region)
                    .collect();
                let explained: Vec<Region> = selected.into_iter().map(|(_, r)| r).collect();
                assert_eq!(explained, real, "T={threshold} excluded={excluded:?}");
            }
        }
    }

    #[test]
    fn explain_classifies_rejections() {
        let opt = optimizer(6);
        let verdicts =
            opt.explain_selection(&fixture(), &[Region::EuNorth1], Some(Region::ApNortheast3));
        let outcome = |region: Region| {
            verdicts.iter().find(|v| v.region == region).unwrap().outcome
        };
        assert_eq!(outcome(Region::ApNortheast3), CandidateOutcome::InterruptedHere);
        assert_eq!(outcome(Region::EuNorth1), CandidateOutcome::Quarantined);
        assert_eq!(outcome(Region::UsEast1), CandidateOutcome::BelowThreshold);
        // With the interrupted and quarantined tier-A members gone, the
        // remaining threshold-6 regions all fit under R=4.
        assert!(matches!(outcome(Region::UsWest1), CandidateOutcome::Selected { .. }));
        assert_eq!(outcome(Region::UsWest1).label(), "selected:0");
        assert_eq!(outcome(Region::UsEast1).label(), "below-threshold");
    }

    #[test]
    fn explain_marks_over_cap_and_not_preferred() {
        // Threshold 4 admits all 12 fixture regions; R=4 prices the
        // qualifying-but-expensive ones out.
        let verdicts = optimizer(4).explain_selection(&fixture(), &[], None);
        assert!(verdicts
            .iter()
            .any(|v| v.outcome == CandidateOutcome::OverCap));
        let opt = Optimizer::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(5)
                .preferred_regions(vec![Region::CaCentral1])
                .build(),
        );
        let verdicts = opt.explain_selection(&fixture(), &[], None);
        let eu = verdicts.iter().find(|v| v.region == Region::EuWest3).unwrap();
        assert_eq!(eu.outcome, CandidateOutcome::NotPreferred);
    }

    #[test]
    fn placement_accessors() {
        assert!(Placement::Spot(Region::UsEast1).is_spot());
        assert!(!Placement::OnDemand(Region::UsEast1).is_spot());
        assert_eq!(Placement::OnDemand(Region::EuWest1).region(), Region::EuWest1);
        let _ = InitialPlacement::Distributed; // referenced for docs
    }
}
