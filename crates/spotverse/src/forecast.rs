//! Metric forecasting (paper §7 future work: "use machine learning to
//! optimize cloud resource allocation, predict efficient resource
//! configurations, and adapt to market conditions").
//!
//! A deliberately simple, fully deterministic online model: per-region
//! exponentially-weighted moving averages with a trend term
//! (Holt's linear smoothing) over the spot price and placement score. A
//! [`ForecastingSpotVerseStrategy`] feeds Algorithm 1 the *predicted*
//! next-period metrics instead of the latest observation, damping
//! transient episode spikes that would otherwise reorder the selection.

use std::collections::BTreeMap;

use cloud_market::{PlacementScore, Region, UsdPerHour};
use serde::{Deserialize, Serialize};

use crate::config::{InitialPlacement, SpotVerseConfig};
use crate::optimizer::{MigrationPolicy, Optimizer, Placement, RegionAssessment};
use crate::strategy::{Strategy, StrategyContext};

/// Holt's linear (level + trend) exponential smoothing for one signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltSmoother {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
}

impl HoltSmoother {
    /// Creates a smoother with level gain `alpha` and trend gain `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless both gains are in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0, "bad alpha {alpha}");
        assert!((0.0..=1.0).contains(&beta) && beta > 0.0, "bad beta {beta}");
        HoltSmoother {
            alpha,
            beta,
            level: None,
            trend: 0.0,
        }
    }

    /// Ingests an observation.
    pub fn observe(&mut self, value: f64) {
        match self.level {
            None => self.level = Some(value),
            Some(prev_level) => {
                let new_level =
                    self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend =
                    self.beta * (new_level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(new_level);
            }
        }
    }

    /// Predicts `steps` periods ahead, or `None` before any observation.
    pub fn forecast(&self, steps: u32) -> Option<f64> {
        self.level.map(|l| l + self.trend * f64::from(steps))
    }

    /// Number-free check for whether the model has seen data.
    pub fn is_warm(&self) -> bool {
        self.level.is_some()
    }
}

/// Per-region forecasters for the two signals Algorithm 1 consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricForecaster {
    price: BTreeMap<Region, HoltSmoother>,
    placement: BTreeMap<Region, HoltSmoother>,
    observations: u64,
}

impl MetricForecaster {
    /// Creates an empty forecaster.
    pub fn new() -> Self {
        MetricForecaster::default()
    }

    /// Observations ingested so far (snapshots × regions).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Ingests a snapshot of assessments.
    pub fn observe(&mut self, assessments: &[RegionAssessment]) {
        for a in assessments {
            self.price
                .entry(a.region)
                .or_insert_with(|| HoltSmoother::new(0.35, 0.1))
                .observe(a.spot_price.rate());
            self.placement
                .entry(a.region)
                .or_insert_with(|| HoltSmoother::new(0.25, 0.05))
                .observe(f64::from(a.placement.value()));
            self.observations += 1;
        }
    }

    /// Produces predicted assessments: prices and placement scores are
    /// one-step-ahead forecasts; stability (a slow banded signal) passes
    /// through unchanged. Falls back to the observation when a region has
    /// no forecast yet.
    pub fn predict(&self, assessments: &[RegionAssessment]) -> Vec<RegionAssessment> {
        assessments
            .iter()
            .map(|a| {
                let price = self
                    .price
                    .get(&a.region)
                    .and_then(|s| s.forecast(1))
                    .map(|p| p.max(0.0001))
                    .unwrap_or_else(|| a.spot_price.rate());
                let placement = self
                    .placement
                    .get(&a.region)
                    .and_then(|s| s.forecast(1))
                    .map(PlacementScore::from_f64_clamped)
                    .unwrap_or(a.placement);
                RegionAssessment {
                    region: a.region,
                    placement,
                    stability: a.stability,
                    spot_price: UsdPerHour::new(price),
                    on_demand_price: a.on_demand_price,
                }
            })
            .collect()
    }
}

/// SpotVerse with forecasted metrics: every decision first updates the
/// forecaster with the observed snapshot, then runs Algorithm 1 on the
/// predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastingSpotVerseStrategy {
    optimizer: Optimizer,
    forecaster: MetricForecaster,
}

impl ForecastingSpotVerseStrategy {
    /// Creates the strategy.
    pub fn new(config: SpotVerseConfig) -> Self {
        ForecastingSpotVerseStrategy {
            optimizer: Optimizer::new(config),
            forecaster: MetricForecaster::new(),
        }
    }

    /// The forecaster state (for inspection).
    pub fn forecaster(&self) -> &MetricForecaster {
        &self.forecaster
    }
}

impl Strategy for ForecastingSpotVerseStrategy {
    fn name(&self) -> &str {
        "spotverse-forecast"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        self.forecaster.observe(ctx.assessments);
        let predicted = self.forecaster.predict(ctx.assessments);
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => {
                self.optimizer.initial_placements_into(&predicted, n, &[], out);
            }
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        self.forecaster.observe(ctx.assessments);
        let predicted = self.forecaster.predict(ctx.assessments);
        self.optimizer
            .migration_target(&predicted, previous, MigrationPolicy::RandomTopR, &[], ctx.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::{InstanceType, StabilityScore};

    fn assessment(region: Region, price: f64) -> RegionAssessment {
        RegionAssessment {
            region,
            placement: PlacementScore::new(5).unwrap(),
            stability: StabilityScore::new(2).unwrap(),
            spot_price: UsdPerHour::new(price),
            on_demand_price: UsdPerHour::new(price * 4.0),
        }
    }

    #[test]
    fn holt_tracks_level() {
        let mut s = HoltSmoother::new(0.5, 0.1);
        assert!(!s.is_warm());
        assert_eq!(s.forecast(1), None);
        for _ in 0..50 {
            s.observe(10.0);
        }
        assert!((s.forecast(1).unwrap() - 10.0).abs() < 0.1);
        assert!(s.is_warm());
    }

    #[test]
    fn holt_extrapolates_trend() {
        let mut s = HoltSmoother::new(0.5, 0.3);
        for i in 0..100 {
            s.observe(i as f64);
        }
        let one = s.forecast(1).unwrap();
        let five = s.forecast(5).unwrap();
        assert!(five > one, "positive trend extrapolates upward");
        assert!((one - 100.0).abs() < 3.0, "one-step forecast near next value, got {one}");
    }

    #[test]
    #[should_panic(expected = "bad alpha")]
    fn bad_gains_rejected() {
        HoltSmoother::new(0.0, 0.5);
    }

    #[test]
    fn forecaster_damps_a_transient_spike() {
        let mut f = MetricForecaster::new();
        // A stable price, then one spike.
        for _ in 0..20 {
            f.observe(&[assessment(Region::UsEast1, 0.05)]);
        }
        f.observe(&[assessment(Region::UsEast1, 0.09)]); // spike
        let predicted = f.predict(&[assessment(Region::UsEast1, 0.09)]);
        let p = predicted[0].spot_price.rate();
        assert!(
            p < 0.08,
            "forecast {p} should sit below the raw spike 0.09"
        );
        assert!(p > 0.05, "but above the old level");
    }

    #[test]
    fn predict_falls_back_for_unseen_regions() {
        let f = MetricForecaster::new();
        let raw = assessment(Region::EuWest1, 0.07);
        let predicted = f.predict(&[raw]);
        assert_eq!(predicted[0].spot_price, raw.spot_price);
        assert_eq!(predicted[0].placement, raw.placement);
    }

    #[test]
    fn strategy_accumulates_observations_across_decisions() {
        let mut strategy = ForecastingSpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ));
        let assessments: Vec<RegionAssessment> = Region::ALL
            .into_iter()
            .map(|r| assessment(r, 0.05))
            .collect();
        let mut rng = sim_kernel::SimRng::seed_from_u64(1);
        let mut ctx = StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: sim_kernel::SimTime::ZERO,
            assessments: &assessments,
            quarantined: &[],
            rng: &mut rng,
        };
        let placements = strategy.initial_placements(&mut ctx, 4);
        assert_eq!(placements.len(), 4);
        let _ = strategy.relocate(&mut ctx, Region::UsEast1);
        assert_eq!(strategy.forecaster().observations(), 24, "two snapshots x 12 regions");
        assert_eq!(strategy.name(), "spotverse-forecast");
    }
}
