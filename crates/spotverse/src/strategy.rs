//! Placement strategies: SpotVerse itself plus every baseline the paper
//! compares against.
//!
//! * [`SingleRegionStrategy`] — the traditional deployment: all spot
//!   instances in one (cheapest) region, relaunch there on interruption.
//! * [`OnDemandStrategy`] — guaranteed capacity in the cheapest on-demand
//!   region; never interrupted.
//! * [`NaiveMultiRegionStrategy`] — the motivational experiment (§2.2):
//!   a fixed region set, round-robin start, uniform random relaunch.
//! * [`SkyPilotStrategy`] — the state-of-the-art baseline (§5.2.5):
//!   always chase the cheapest spot price, automatically relaunching
//!   interrupted jobs, ignoring stability metrics.
//! * [`SpotVerseStrategy`] — Algorithm 1 via the [`Optimizer`].

use std::fmt;

use cloud_market::{InstanceType, Region};
use sim_kernel::{SimDuration, SimRng, SimTime};

use crate::config::{InitialPlacement, SpotVerseConfig};
use crate::optimizer::{
    CandidateVerdict, MigrationPolicy, Optimizer, Placement, RegionAssessment,
};

/// Everything a strategy may look at when deciding a placement.
///
/// Assessments come from the Monitor's latest snapshot (or fresh market
/// reads for baselines); the RNG is the strategy's own deterministic
/// stream.
#[derive(Debug)]
pub struct StrategyContext<'a> {
    /// The managed instance type.
    pub instance_type: InstanceType,
    /// The decision instant.
    pub now: SimTime,
    /// Per-region metrics available to the decision.
    pub assessments: &'a [RegionAssessment],
    /// Regions currently quarantined by the health control plane (breaker
    /// `Open`). Health-aware strategies exclude them from selection;
    /// baselines ignore the list — always empty on fault-free runs.
    pub quarantined: &'a [Region],
    /// The strategy's random stream.
    pub rng: &'a mut SimRng,
}

impl StrategyContext<'_> {
    /// The region with the cheapest spot price.
    ///
    /// # Panics
    ///
    /// Panics if there are no assessments.
    pub fn cheapest_spot_region(&self) -> Region {
        self.assessments
            .iter()
            .min_by(|a, b| {
                a.spot_price
                    .rate()
                    .total_cmp(&b.spot_price.rate())
                    .then_with(|| a.region.name().cmp(b.region.name()))
            })
            .expect("cheapest_spot_region: empty assessments")
            .region
    }

    /// The region with the cheapest on-demand price.
    ///
    /// # Panics
    ///
    /// Panics if there are no assessments.
    pub fn cheapest_on_demand_region(&self) -> Region {
        self.assessments
            .iter()
            .min_by(|a, b| {
                a.on_demand_price
                    .rate()
                    .total_cmp(&b.on_demand_price.rate())
                    .then_with(|| a.region.name().cmp(b.region.name()))
            })
            .expect("cheapest_on_demand_region: empty assessments")
            .region
    }
}

/// A placement strategy under experiment.
pub trait Strategy: fmt::Debug {
    /// A short display name for reports.
    fn name(&self) -> &str;

    /// Initial placements for a fleet of `n` workloads, appended to `out`.
    ///
    /// The fleet event loop calls this with a pooled scratch vector so a
    /// run of many small arrival batches (a Poisson fleet is mostly
    /// batches of one) does not allocate a fresh `Vec` per decision.
    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    );

    /// Initial placements for a fleet of `n` workloads, as a fresh vector.
    fn initial_placements(&mut self, ctx: &mut StrategyContext<'_>, n: usize) -> Vec<Placement> {
        let mut out = Vec::with_capacity(n);
        self.initial_placements_into(ctx, n, &mut out);
        out
    }

    /// Where to relaunch a workload that was interrupted (or whose request
    /// keeps failing) in `previous_region`.
    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous_region: Region) -> Placement;

    /// Explains how the strategy ranked every candidate region at a
    /// decision point — purely observational, consulted only by the trace
    /// layer. Baselines without a scoring pipeline return `None`.
    fn explain_candidates(
        &self,
        _assessments: &[RegionAssessment],
        _quarantined: &[Region],
        _previous: Option<Region>,
    ) -> Option<Vec<CandidateVerdict>> {
        None
    }

    /// The proactive checkpoint cadence this strategy wants for
    /// checkpointable workloads, judged from the same decision context as
    /// the placement. `None` (the default) disables proactive ticks
    /// entirely — the classic notice-only checkpoint engine and every
    /// committed golden trace are untouched.
    fn checkpoint_interval(&self, _ctx: &StrategyContext<'_>) -> Option<SimDuration> {
        None
    }
}

/// All spot instances in one fixed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingleRegionStrategy {
    region: Region,
}

impl SingleRegionStrategy {
    /// Creates the strategy pinned to `region`.
    pub fn new(region: Region) -> Self {
        SingleRegionStrategy { region }
    }
}

impl Strategy for SingleRegionStrategy {
    fn name(&self) -> &str {
        "single-region"
    }

    fn initial_placements_into(
        &mut self,
        _ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        out.extend(std::iter::repeat_n(Placement::Spot(self.region), n));
    }

    fn relocate(&mut self, _ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        Placement::Spot(self.region)
    }
}

/// Cheapest on-demand everywhere; never interrupted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnDemandStrategy {
    pinned: Option<Region>,
}

impl OnDemandStrategy {
    /// Cheapest-on-demand placement.
    pub fn new() -> Self {
        OnDemandStrategy { pinned: None }
    }

    /// On-demand in a fixed region.
    pub fn pinned(region: Region) -> Self {
        OnDemandStrategy {
            pinned: Some(region),
        }
    }
}

impl Strategy for OnDemandStrategy {
    fn name(&self) -> &str {
        "on-demand"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        let region = self.pinned.unwrap_or_else(|| ctx.cheapest_on_demand_region());
        out.extend(std::iter::repeat_n(Placement::OnDemand(region), n));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        Placement::OnDemand(self.pinned.unwrap_or_else(|| ctx.cheapest_on_demand_region()))
    }
}

/// The motivational experiment's naive multi-region strategy: a fixed
/// region list, round-robin start, uniform random relaunch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveMultiRegionStrategy {
    regions: Vec<Region>,
}

impl NaiveMultiRegionStrategy {
    /// Creates the strategy over a fixed region set.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty.
    pub fn new(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "NaiveMultiRegionStrategy: no regions");
        NaiveMultiRegionStrategy { regions }
    }

    /// The motivational experiment's three regions (paper §2.2).
    pub fn paper_motivational() -> Self {
        NaiveMultiRegionStrategy::new(vec![
            Region::ApNortheast3,
            Region::CaCentral1,
            Region::EuNorth1,
        ])
    }
}

impl Strategy for NaiveMultiRegionStrategy {
    fn name(&self) -> &str {
        "naive-multi-region"
    }

    fn initial_placements_into(
        &mut self,
        _ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        out.extend((0..n).map(|i| Placement::Spot(self.regions[i % self.regions.len()])));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        let idx = ctx.rng.pick_index(self.regions.len());
        Placement::Spot(self.regions[idx])
    }
}

/// The SkyPilot-like baseline: cheapest spot price wins, stability ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkyPilotStrategy;

impl SkyPilotStrategy {
    /// Creates the baseline.
    pub fn new() -> Self {
        SkyPilotStrategy
    }
}

impl Strategy for SkyPilotStrategy {
    fn name(&self) -> &str {
        "skypilot"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        // SkyPilot provisions each job in the cheapest available market.
        out.extend(std::iter::repeat_n(Placement::Spot(ctx.cheapest_spot_region()), n));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        // Automatic relaunch, still cheapest-first — possibly the very
        // region that just reclaimed the instance.
        Placement::Spot(ctx.cheapest_spot_region())
    }
}

/// Bid-price-aware provisioning: spot capacity is only worth holding
/// while the market clears below a fixed fraction of the on-demand rate.
///
/// Each decision picks the cheapest non-quarantined region whose spot
/// price is at or under `bid_fraction × on_demand_price`; when no region
/// qualifies — a capacity crunch or a correlated price shock pushing the
/// whole market toward on-demand parity — the strategy takes guaranteed
/// capacity at the cheapest on-demand rate instead of overpaying for
/// interruptible instances. This makes it *regime-sensitive*: in a calm
/// baseline market it behaves like a slightly pickier SkyPilot, while
/// under price-spiking regimes it sidesteps the interruption storm
/// entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct BidPriceAwareStrategy {
    bid_fraction: f64,
}

impl BidPriceAwareStrategy {
    /// The default bid: 60 % of the regional on-demand rate.
    pub fn new() -> Self {
        BidPriceAwareStrategy::with_bid_fraction(0.6)
    }

    /// Creates the strategy with an explicit bid fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bid_fraction <= 1`.
    pub fn with_bid_fraction(bid_fraction: f64) -> Self {
        assert!(
            bid_fraction > 0.0 && bid_fraction <= 1.0,
            "bid_fraction must be in (0, 1]"
        );
        BidPriceAwareStrategy { bid_fraction }
    }

    /// The bid as a fraction of the on-demand rate.
    pub fn bid_fraction(&self) -> f64 {
        self.bid_fraction
    }

    fn pick(&self, ctx: &StrategyContext<'_>) -> Placement {
        let mut best: Option<&RegionAssessment> = None;
        for a in ctx.assessments {
            if ctx.quarantined.contains(&a.region) {
                continue;
            }
            if a.spot_price.rate() > self.bid_fraction * a.on_demand_price.rate() {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => a
                    .spot_price
                    .rate()
                    .total_cmp(&b.spot_price.rate())
                    .then_with(|| a.region.name().cmp(b.region.name()))
                    .is_lt(),
            };
            if better {
                best = Some(a);
            }
        }
        match best {
            Some(a) => Placement::Spot(a.region),
            None => Placement::OnDemand(ctx.cheapest_on_demand_region()),
        }
    }
}

impl Default for BidPriceAwareStrategy {
    fn default() -> Self {
        BidPriceAwareStrategy::new()
    }
}

impl Strategy for BidPriceAwareStrategy {
    fn name(&self) -> &str {
        "bid-price"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        out.extend(std::iter::repeat_n(self.pick(ctx), n));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        self.pick(ctx)
    }
}

/// A checkpoint-interval-adaptive policy: placement chases stability, and
/// the proactive checkpoint cadence widens or narrows with the observed
/// hazard level.
///
/// The mean Stability Score across the current assessments (1 = worst
/// band, 3 = calmest) is mapped linearly onto
/// `[min_interval, max_interval]`: a calm market earns a wide cadence
/// (few checkpoint uploads wasted), a hazardous one — a capacity-crunch
/// week, a correlated shock — tightens it so an interruption loses
/// minutes of work instead of hours. The cadence is re-judged at every
/// placement decision, so the policy tracks regime swings mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointAdaptiveStrategy {
    min_interval: SimDuration,
    max_interval: SimDuration,
}

impl CheckpointAdaptiveStrategy {
    /// The default cadence band: 1 h under peak hazard, 6 h when calm.
    pub fn new() -> Self {
        CheckpointAdaptiveStrategy::with_band(
            SimDuration::from_hours(1),
            SimDuration::from_hours(6),
        )
    }

    /// Creates the policy with an explicit cadence band.
    ///
    /// # Panics
    ///
    /// Panics if the band is empty or inverted.
    pub fn with_band(min_interval: SimDuration, max_interval: SimDuration) -> Self {
        assert!(
            SimDuration::ZERO < min_interval && min_interval <= max_interval,
            "cadence band must satisfy 0 < min <= max"
        );
        CheckpointAdaptiveStrategy { min_interval, max_interval }
    }

    /// The most stable non-quarantined region; ties break on the cheaper
    /// spot price, then the region name.
    fn most_stable(&self, ctx: &StrategyContext<'_>) -> Placement {
        let mut best: Option<&RegionAssessment> = None;
        for a in ctx.assessments {
            if ctx.quarantined.contains(&a.region) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => b
                    .stability
                    .cmp(&a.stability)
                    .then_with(|| a.spot_price.rate().total_cmp(&b.spot_price.rate()))
                    .then_with(|| a.region.name().cmp(b.region.name()))
                    .is_lt(),
            };
            if better {
                best = Some(a);
            }
        }
        match best {
            Some(a) => Placement::Spot(a.region),
            // Everything quarantined: guaranteed capacity is the only
            // sensible fallback.
            None => Placement::OnDemand(ctx.cheapest_on_demand_region()),
        }
    }
}

impl Default for CheckpointAdaptiveStrategy {
    fn default() -> Self {
        CheckpointAdaptiveStrategy::new()
    }
}

impl Strategy for CheckpointAdaptiveStrategy {
    fn name(&self) -> &str {
        "checkpoint-adaptive"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        out.extend(std::iter::repeat_n(self.most_stable(ctx), n));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        self.most_stable(ctx)
    }

    fn checkpoint_interval(&self, ctx: &StrategyContext<'_>) -> Option<SimDuration> {
        if ctx.assessments.is_empty() {
            return Some(self.max_interval);
        }
        let sum: u64 = ctx
            .assessments
            .iter()
            .map(|a| u64::from(a.stability.value()))
            .sum();
        let mean = sum as f64 / ctx.assessments.len() as f64;
        // Stability 1 (hazardous) → min_interval, 3 (calm) → max_interval.
        let t = ((mean - 1.0) / 2.0).clamp(0.0, 1.0);
        let span = (self.max_interval - self.min_interval).as_secs() as f64;
        let secs = self.min_interval.as_secs() + (t * span).round() as u64;
        Some(SimDuration::from_secs(secs))
    }
}

/// SpotVerse: Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotVerseStrategy {
    optimizer: Optimizer,
}

impl SpotVerseStrategy {
    /// Creates the strategy from a configuration.
    pub fn new(config: SpotVerseConfig) -> Self {
        SpotVerseStrategy {
            optimizer: Optimizer::new(config),
        }
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }
}

impl Strategy for SpotVerseStrategy {
    fn name(&self) -> &str {
        "spotverse"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => self
                .optimizer
                .initial_placements_into(ctx.assessments, n, ctx.quarantined, out),
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        self.optimizer.migration_target(
            ctx.assessments,
            previous,
            MigrationPolicy::RandomTopR,
            ctx.quarantined,
            ctx.rng,
        )
    }

    fn explain_candidates(
        &self,
        assessments: &[RegionAssessment],
        quarantined: &[Region],
        previous: Option<Region>,
    ) -> Option<Vec<CandidateVerdict>> {
        Some(self.optimizer.explain_selection(assessments, quarantined, previous))
    }
}

/// SpotVerse with one Algorithm-1 component knocked out or replaced —
/// used by the component-ablation bench to attribute the paper's gains to
/// individual design choices.
#[derive(Debug, Clone, PartialEq)]
pub struct AblatedSpotVerseStrategy {
    optimizer: Optimizer,
    policy: MigrationPolicy,
    name: String,
}

impl AblatedSpotVerseStrategy {
    /// Creates the ablated strategy with an explicit migration policy.
    pub fn new(config: SpotVerseConfig, policy: MigrationPolicy) -> Self {
        let name = match policy {
            MigrationPolicy::RandomTopR => "spotverse-ablate-none",
            MigrationPolicy::CheapestQualifying => "spotverse-ablate-random-pick",
            MigrationPolicy::StayPut => "spotverse-ablate-migration",
        };
        AblatedSpotVerseStrategy {
            optimizer: Optimizer::new(config),
            policy,
            name: name.to_owned(),
        }
    }

    /// The migration policy in effect.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }
}

impl Strategy for AblatedSpotVerseStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => self
                .optimizer
                .initial_placements_into(ctx.assessments, n, ctx.quarantined, out),
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        self.optimizer.migration_target(
            ctx.assessments,
            previous,
            self.policy,
            ctx.quarantined,
            ctx.rng,
        )
    }

    fn explain_candidates(
        &self,
        assessments: &[RegionAssessment],
        quarantined: &[Region],
        previous: Option<Region>,
    ) -> Option<Vec<CandidateVerdict>> {
        Some(self.optimizer.explain_selection(assessments, quarantined, previous))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::{MarketConfig, SpotMarket};

    use crate::monitor::Monitor;

    fn assessments(at: SimTime) -> Vec<RegionAssessment> {
        let market = SpotMarket::new(MarketConfig::with_seed(5));
        Monitor::new(InstanceType::M5Xlarge, Region::UsEast1)
            .fresh_assessments(&market, at)
            .unwrap()
    }

    fn ctx_with<'a>(
        assessments: &'a [RegionAssessment],
        rng: &'a mut SimRng,
    ) -> StrategyContext<'a> {
        StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::ZERO,
            assessments,
            quarantined: &[],
            rng,
        }
    }

    #[test]
    fn single_region_never_moves() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(1);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SingleRegionStrategy::new(Region::CaCentral1);
        let placements = s.initial_placements(&mut ctx, 5);
        assert!(placements.iter().all(|p| *p == Placement::Spot(Region::CaCentral1)));
        assert_eq!(s.relocate(&mut ctx, Region::CaCentral1), Placement::Spot(Region::CaCentral1));
        assert_eq!(s.name(), "single-region");
    }

    #[test]
    fn on_demand_picks_cheapest_or_pin() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(2);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = OnDemandStrategy::new();
        let placements = s.initial_placements(&mut ctx, 2);
        assert!(!placements[0].is_spot());
        // us-east-1/2, us-west-2 share the cheapest multiplier; ties break
        // alphabetically.
        assert_eq!(placements[0].region(), Region::UsEast1);
        let mut pinned = OnDemandStrategy::pinned(Region::EuWest1);
        assert_eq!(
            pinned.initial_placements(&mut ctx, 1)[0],
            Placement::OnDemand(Region::EuWest1)
        );
        assert_eq!(pinned.relocate(&mut ctx, Region::EuWest1).region(), Region::EuWest1);
    }

    #[test]
    fn naive_multi_region_round_robins_and_randomizes() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(3);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = NaiveMultiRegionStrategy::paper_motivational();
        let placements = s.initial_placements(&mut ctx, 6);
        assert_eq!(placements[0].region(), Region::ApNortheast3);
        assert_eq!(placements[1].region(), Region::CaCentral1);
        assert_eq!(placements[2].region(), Region::EuNorth1);
        assert_eq!(placements[3].region(), Region::ApNortheast3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.relocate(&mut ctx, Region::CaCentral1).region());
        }
        assert_eq!(seen.len(), 3, "random relaunch over all three regions");
    }

    #[test]
    fn skypilot_chases_cheapest_spot() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(4);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SkyPilotStrategy::new();
        let placements = s.initial_placements(&mut ctx, 3);
        let cheapest = ctx.cheapest_spot_region();
        assert!(placements.iter().all(|p| p.region() == cheapest && p.is_spot()));
        // SkyPilot may relaunch into the interrupted region.
        assert_eq!(s.relocate(&mut ctx, cheapest).region(), cheapest);
    }

    #[test]
    fn spotverse_single_region_start_still_migrates_away() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(5);
        let mut ctx = ctx_with(&a, &mut rng);
        let config = SpotVerseConfig::builder(InstanceType::M5Xlarge)
            .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
            .build();
        let mut s = SpotVerseStrategy::new(config);
        let placements = s.initial_placements(&mut ctx, 4);
        assert!(placements.iter().all(|p| p.region() == Region::CaCentral1));
        for _ in 0..50 {
            let target = s.relocate(&mut ctx, Region::CaCentral1);
            assert_ne!(target.region(), Region::CaCentral1);
            assert!(target.is_spot());
        }
        assert_eq!(s.name(), "spotverse");
        assert_eq!(s.optimizer().config().threshold(), 6);
    }

    #[test]
    fn spotverse_distributed_start_spreads_over_top_regions() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(6);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SpotVerseStrategy::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
        let placements = s.initial_placements(&mut ctx, 8);
        let distinct: std::collections::BTreeSet<Region> =
            placements.iter().map(|p| p.region()).collect();
        assert!(distinct.len() >= 3, "distributed start uses several regions: {distinct:?}");
        assert!(placements.iter().all(|p| p.is_spot()));
    }

    #[test]
    fn spotverse_impossible_threshold_goes_on_demand() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(7);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SpotVerseStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(14)
                .build(),
        );
        assert!(s.initial_placements(&mut ctx, 3).iter().all(|p| !p.is_spot()));
        assert!(!s.relocate(&mut ctx, Region::UsEast1).is_spot());
    }

    #[test]
    fn explain_candidates_only_for_scoring_strategies() {
        let a = assessments(SimTime::ZERO);
        assert!(SingleRegionStrategy::new(Region::UsEast1)
            .explain_candidates(&a, &[], None)
            .is_none());
        assert!(SkyPilotStrategy::new().explain_candidates(&a, &[], None).is_none());
        let s = SpotVerseStrategy::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
        let verdicts = s.explain_candidates(&a, &[], None).expect("spotverse explains");
        assert_eq!(verdicts.len(), a.len(), "one verdict per assessed region");
        let ablated = AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            MigrationPolicy::CheapestQualifying,
        );
        assert!(ablated.explain_candidates(&a, &[], Some(Region::UsEast1)).is_some());
    }

    #[test]
    #[should_panic(expected = "no regions")]
    fn naive_strategy_rejects_empty_region_list() {
        NaiveMultiRegionStrategy::new(vec![]);
    }

    #[test]
    fn bid_price_takes_cheapest_qualifying_spot() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(11);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = BidPriceAwareStrategy::new();
        let placements = s.initial_placements(&mut ctx, 3);
        let chosen = placements[0];
        assert!(placements.iter().all(|p| *p == chosen));
        if chosen.is_spot() {
            let picked = a.iter().find(|x| x.region == chosen.region()).unwrap();
            assert!(picked.spot_price.rate() <= 0.6 * picked.on_demand_price.rate());
        }
        assert_eq!(s.name(), "bid-price");
        assert!((s.bid_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bid_price_falls_back_to_on_demand_when_nothing_qualifies() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(12);
        let mut ctx = ctx_with(&a, &mut rng);
        // An absurdly tight bid: no spot market clears at 0.1 % of
        // on-demand, so every placement must be guaranteed capacity.
        let mut s = BidPriceAwareStrategy::with_bid_fraction(0.001);
        let placements = s.initial_placements(&mut ctx, 2);
        assert!(placements.iter().all(|p| !p.is_spot()));
        assert!(!s.relocate(&mut ctx, Region::UsEast1).is_spot());
    }

    #[test]
    #[should_panic(expected = "bid_fraction")]
    fn bid_price_rejects_out_of_range_fraction() {
        BidPriceAwareStrategy::with_bid_fraction(1.5);
    }

    #[test]
    fn checkpoint_adaptive_chases_stability_and_adapts_cadence() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(13);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = CheckpointAdaptiveStrategy::new();
        let placements = s.initial_placements(&mut ctx, 2);
        let chosen = placements[0];
        assert!(chosen.is_spot());
        let best = a.iter().map(|x| x.stability).max().unwrap();
        let picked = a.iter().find(|x| x.region == chosen.region()).unwrap();
        assert_eq!(picked.stability, best, "placement chases the stability band");
        let interval = s.checkpoint_interval(&ctx).expect("adaptive cadence is always on");
        assert!(interval >= SimDuration::from_hours(1));
        assert!(interval <= SimDuration::from_hours(6));
        assert_eq!(s.name(), "checkpoint-adaptive");
    }

    #[test]
    fn checkpoint_cadence_tightens_with_hazard() {
        let a = assessments(SimTime::ZERO);
        let s = CheckpointAdaptiveStrategy::new();
        // Clamp every region to the worst stability band: the cadence
        // must collapse to the minimum interval.
        let hazardous: Vec<RegionAssessment> = a
            .iter()
            .map(|x| RegionAssessment { stability: cloud_market::StabilityScore::MIN, ..*x })
            .collect();
        let mut rng = SimRng::seed_from_u64(14);
        let calm_interval = {
            let ctx = ctx_with(&a, &mut rng);
            s.checkpoint_interval(&ctx).unwrap()
        };
        let mut rng2 = SimRng::seed_from_u64(14);
        let tight_interval = {
            let ctx = ctx_with(&hazardous, &mut rng2);
            s.checkpoint_interval(&ctx).unwrap()
        };
        assert_eq!(tight_interval, SimDuration::from_hours(1));
        assert!(tight_interval <= calm_interval);
    }

    #[test]
    fn default_strategies_want_no_proactive_cadence() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(15);
        let ctx = ctx_with(&a, &mut rng);
        assert!(SkyPilotStrategy::new().checkpoint_interval(&ctx).is_none());
        assert!(SingleRegionStrategy::new(Region::UsEast1)
            .checkpoint_interval(&ctx)
            .is_none());
        assert!(
            SpotVerseStrategy::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge))
                .checkpoint_interval(&ctx)
                .is_none()
        );
    }

    #[test]
    fn ablated_stay_put_never_migrates() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(8);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            crate::optimizer::MigrationPolicy::StayPut,
        );
        assert_eq!(
            s.relocate(&mut ctx, Region::CaCentral1),
            Placement::Spot(Region::CaCentral1)
        );
        assert_eq!(s.name(), "spotverse-ablate-migration");
        assert_eq!(s.policy(), crate::optimizer::MigrationPolicy::StayPut);
    }

    #[test]
    fn ablated_cheapest_is_deterministic() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(9);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            crate::optimizer::MigrationPolicy::CheapestQualifying,
        );
        let first = s.relocate(&mut ctx, Region::CaCentral1);
        for _ in 0..20 {
            assert_eq!(s.relocate(&mut ctx, Region::CaCentral1), first);
        }
    }
}
