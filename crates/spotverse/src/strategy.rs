//! Placement strategies: SpotVerse itself plus every baseline the paper
//! compares against.
//!
//! * [`SingleRegionStrategy`] — the traditional deployment: all spot
//!   instances in one (cheapest) region, relaunch there on interruption.
//! * [`OnDemandStrategy`] — guaranteed capacity in the cheapest on-demand
//!   region; never interrupted.
//! * [`NaiveMultiRegionStrategy`] — the motivational experiment (§2.2):
//!   a fixed region set, round-robin start, uniform random relaunch.
//! * [`SkyPilotStrategy`] — the state-of-the-art baseline (§5.2.5):
//!   always chase the cheapest spot price, automatically relaunching
//!   interrupted jobs, ignoring stability metrics.
//! * [`SpotVerseStrategy`] — Algorithm 1 via the [`Optimizer`].

use std::fmt;

use cloud_market::{InstanceType, Region};
use sim_kernel::{SimRng, SimTime};

use crate::config::{InitialPlacement, SpotVerseConfig};
use crate::optimizer::{
    CandidateVerdict, MigrationPolicy, Optimizer, Placement, RegionAssessment,
};

/// Everything a strategy may look at when deciding a placement.
///
/// Assessments come from the Monitor's latest snapshot (or fresh market
/// reads for baselines); the RNG is the strategy's own deterministic
/// stream.
#[derive(Debug)]
pub struct StrategyContext<'a> {
    /// The managed instance type.
    pub instance_type: InstanceType,
    /// The decision instant.
    pub now: SimTime,
    /// Per-region metrics available to the decision.
    pub assessments: &'a [RegionAssessment],
    /// Regions currently quarantined by the health control plane (breaker
    /// `Open`). Health-aware strategies exclude them from selection;
    /// baselines ignore the list — always empty on fault-free runs.
    pub quarantined: &'a [Region],
    /// The strategy's random stream.
    pub rng: &'a mut SimRng,
}

impl StrategyContext<'_> {
    /// The region with the cheapest spot price.
    ///
    /// # Panics
    ///
    /// Panics if there are no assessments.
    pub fn cheapest_spot_region(&self) -> Region {
        self.assessments
            .iter()
            .min_by(|a, b| {
                a.spot_price
                    .rate()
                    .total_cmp(&b.spot_price.rate())
                    .then_with(|| a.region.name().cmp(b.region.name()))
            })
            .expect("cheapest_spot_region: empty assessments")
            .region
    }

    /// The region with the cheapest on-demand price.
    ///
    /// # Panics
    ///
    /// Panics if there are no assessments.
    pub fn cheapest_on_demand_region(&self) -> Region {
        self.assessments
            .iter()
            .min_by(|a, b| {
                a.on_demand_price
                    .rate()
                    .total_cmp(&b.on_demand_price.rate())
                    .then_with(|| a.region.name().cmp(b.region.name()))
            })
            .expect("cheapest_on_demand_region: empty assessments")
            .region
    }
}

/// A placement strategy under experiment.
pub trait Strategy: fmt::Debug {
    /// A short display name for reports.
    fn name(&self) -> &str;

    /// Initial placements for a fleet of `n` workloads, appended to `out`.
    ///
    /// The fleet event loop calls this with a pooled scratch vector so a
    /// run of many small arrival batches (a Poisson fleet is mostly
    /// batches of one) does not allocate a fresh `Vec` per decision.
    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    );

    /// Initial placements for a fleet of `n` workloads, as a fresh vector.
    fn initial_placements(&mut self, ctx: &mut StrategyContext<'_>, n: usize) -> Vec<Placement> {
        let mut out = Vec::with_capacity(n);
        self.initial_placements_into(ctx, n, &mut out);
        out
    }

    /// Where to relaunch a workload that was interrupted (or whose request
    /// keeps failing) in `previous_region`.
    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous_region: Region) -> Placement;

    /// Explains how the strategy ranked every candidate region at a
    /// decision point — purely observational, consulted only by the trace
    /// layer. Baselines without a scoring pipeline return `None`.
    fn explain_candidates(
        &self,
        _assessments: &[RegionAssessment],
        _quarantined: &[Region],
        _previous: Option<Region>,
    ) -> Option<Vec<CandidateVerdict>> {
        None
    }
}

/// All spot instances in one fixed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingleRegionStrategy {
    region: Region,
}

impl SingleRegionStrategy {
    /// Creates the strategy pinned to `region`.
    pub fn new(region: Region) -> Self {
        SingleRegionStrategy { region }
    }
}

impl Strategy for SingleRegionStrategy {
    fn name(&self) -> &str {
        "single-region"
    }

    fn initial_placements_into(
        &mut self,
        _ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        out.extend(std::iter::repeat_n(Placement::Spot(self.region), n));
    }

    fn relocate(&mut self, _ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        Placement::Spot(self.region)
    }
}

/// Cheapest on-demand everywhere; never interrupted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnDemandStrategy {
    pinned: Option<Region>,
}

impl OnDemandStrategy {
    /// Cheapest-on-demand placement.
    pub fn new() -> Self {
        OnDemandStrategy { pinned: None }
    }

    /// On-demand in a fixed region.
    pub fn pinned(region: Region) -> Self {
        OnDemandStrategy {
            pinned: Some(region),
        }
    }
}

impl Strategy for OnDemandStrategy {
    fn name(&self) -> &str {
        "on-demand"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        let region = self.pinned.unwrap_or_else(|| ctx.cheapest_on_demand_region());
        out.extend(std::iter::repeat_n(Placement::OnDemand(region), n));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        Placement::OnDemand(self.pinned.unwrap_or_else(|| ctx.cheapest_on_demand_region()))
    }
}

/// The motivational experiment's naive multi-region strategy: a fixed
/// region list, round-robin start, uniform random relaunch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveMultiRegionStrategy {
    regions: Vec<Region>,
}

impl NaiveMultiRegionStrategy {
    /// Creates the strategy over a fixed region set.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty.
    pub fn new(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "NaiveMultiRegionStrategy: no regions");
        NaiveMultiRegionStrategy { regions }
    }

    /// The motivational experiment's three regions (paper §2.2).
    pub fn paper_motivational() -> Self {
        NaiveMultiRegionStrategy::new(vec![
            Region::ApNortheast3,
            Region::CaCentral1,
            Region::EuNorth1,
        ])
    }
}

impl Strategy for NaiveMultiRegionStrategy {
    fn name(&self) -> &str {
        "naive-multi-region"
    }

    fn initial_placements_into(
        &mut self,
        _ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        out.extend((0..n).map(|i| Placement::Spot(self.regions[i % self.regions.len()])));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        let idx = ctx.rng.pick_index(self.regions.len());
        Placement::Spot(self.regions[idx])
    }
}

/// The SkyPilot-like baseline: cheapest spot price wins, stability ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkyPilotStrategy;

impl SkyPilotStrategy {
    /// Creates the baseline.
    pub fn new() -> Self {
        SkyPilotStrategy
    }
}

impl Strategy for SkyPilotStrategy {
    fn name(&self) -> &str {
        "skypilot"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        // SkyPilot provisions each job in the cheapest available market.
        out.extend(std::iter::repeat_n(Placement::Spot(ctx.cheapest_spot_region()), n));
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, _previous: Region) -> Placement {
        // Automatic relaunch, still cheapest-first — possibly the very
        // region that just reclaimed the instance.
        Placement::Spot(ctx.cheapest_spot_region())
    }
}

/// SpotVerse: Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotVerseStrategy {
    optimizer: Optimizer,
}

impl SpotVerseStrategy {
    /// Creates the strategy from a configuration.
    pub fn new(config: SpotVerseConfig) -> Self {
        SpotVerseStrategy {
            optimizer: Optimizer::new(config),
        }
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }
}

impl Strategy for SpotVerseStrategy {
    fn name(&self) -> &str {
        "spotverse"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => self
                .optimizer
                .initial_placements_into(ctx.assessments, n, ctx.quarantined, out),
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        self.optimizer.migration_target(
            ctx.assessments,
            previous,
            MigrationPolicy::RandomTopR,
            ctx.quarantined,
            ctx.rng,
        )
    }

    fn explain_candidates(
        &self,
        assessments: &[RegionAssessment],
        quarantined: &[Region],
        previous: Option<Region>,
    ) -> Option<Vec<CandidateVerdict>> {
        Some(self.optimizer.explain_selection(assessments, quarantined, previous))
    }
}

/// SpotVerse with one Algorithm-1 component knocked out or replaced —
/// used by the component-ablation bench to attribute the paper's gains to
/// individual design choices.
#[derive(Debug, Clone, PartialEq)]
pub struct AblatedSpotVerseStrategy {
    optimizer: Optimizer,
    policy: MigrationPolicy,
    name: String,
}

impl AblatedSpotVerseStrategy {
    /// Creates the ablated strategy with an explicit migration policy.
    pub fn new(config: SpotVerseConfig, policy: MigrationPolicy) -> Self {
        let name = match policy {
            MigrationPolicy::RandomTopR => "spotverse-ablate-none",
            MigrationPolicy::CheapestQualifying => "spotverse-ablate-random-pick",
            MigrationPolicy::StayPut => "spotverse-ablate-migration",
        };
        AblatedSpotVerseStrategy {
            optimizer: Optimizer::new(config),
            policy,
            name: name.to_owned(),
        }
    }

    /// The migration policy in effect.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }
}

impl Strategy for AblatedSpotVerseStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => self
                .optimizer
                .initial_placements_into(ctx.assessments, n, ctx.quarantined, out),
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        self.optimizer.migration_target(
            ctx.assessments,
            previous,
            self.policy,
            ctx.quarantined,
            ctx.rng,
        )
    }

    fn explain_candidates(
        &self,
        assessments: &[RegionAssessment],
        quarantined: &[Region],
        previous: Option<Region>,
    ) -> Option<Vec<CandidateVerdict>> {
        Some(self.optimizer.explain_selection(assessments, quarantined, previous))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::{MarketConfig, SpotMarket};

    use crate::monitor::Monitor;

    fn assessments(at: SimTime) -> Vec<RegionAssessment> {
        let market = SpotMarket::new(MarketConfig::with_seed(5));
        Monitor::new(InstanceType::M5Xlarge, Region::UsEast1)
            .fresh_assessments(&market, at)
            .unwrap()
    }

    fn ctx_with<'a>(
        assessments: &'a [RegionAssessment],
        rng: &'a mut SimRng,
    ) -> StrategyContext<'a> {
        StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::ZERO,
            assessments,
            quarantined: &[],
            rng,
        }
    }

    #[test]
    fn single_region_never_moves() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(1);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SingleRegionStrategy::new(Region::CaCentral1);
        let placements = s.initial_placements(&mut ctx, 5);
        assert!(placements.iter().all(|p| *p == Placement::Spot(Region::CaCentral1)));
        assert_eq!(s.relocate(&mut ctx, Region::CaCentral1), Placement::Spot(Region::CaCentral1));
        assert_eq!(s.name(), "single-region");
    }

    #[test]
    fn on_demand_picks_cheapest_or_pin() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(2);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = OnDemandStrategy::new();
        let placements = s.initial_placements(&mut ctx, 2);
        assert!(!placements[0].is_spot());
        // us-east-1/2, us-west-2 share the cheapest multiplier; ties break
        // alphabetically.
        assert_eq!(placements[0].region(), Region::UsEast1);
        let mut pinned = OnDemandStrategy::pinned(Region::EuWest1);
        assert_eq!(
            pinned.initial_placements(&mut ctx, 1)[0],
            Placement::OnDemand(Region::EuWest1)
        );
        assert_eq!(pinned.relocate(&mut ctx, Region::EuWest1).region(), Region::EuWest1);
    }

    #[test]
    fn naive_multi_region_round_robins_and_randomizes() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(3);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = NaiveMultiRegionStrategy::paper_motivational();
        let placements = s.initial_placements(&mut ctx, 6);
        assert_eq!(placements[0].region(), Region::ApNortheast3);
        assert_eq!(placements[1].region(), Region::CaCentral1);
        assert_eq!(placements[2].region(), Region::EuNorth1);
        assert_eq!(placements[3].region(), Region::ApNortheast3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.relocate(&mut ctx, Region::CaCentral1).region());
        }
        assert_eq!(seen.len(), 3, "random relaunch over all three regions");
    }

    #[test]
    fn skypilot_chases_cheapest_spot() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(4);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SkyPilotStrategy::new();
        let placements = s.initial_placements(&mut ctx, 3);
        let cheapest = ctx.cheapest_spot_region();
        assert!(placements.iter().all(|p| p.region() == cheapest && p.is_spot()));
        // SkyPilot may relaunch into the interrupted region.
        assert_eq!(s.relocate(&mut ctx, cheapest).region(), cheapest);
    }

    #[test]
    fn spotverse_single_region_start_still_migrates_away() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(5);
        let mut ctx = ctx_with(&a, &mut rng);
        let config = SpotVerseConfig::builder(InstanceType::M5Xlarge)
            .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
            .build();
        let mut s = SpotVerseStrategy::new(config);
        let placements = s.initial_placements(&mut ctx, 4);
        assert!(placements.iter().all(|p| p.region() == Region::CaCentral1));
        for _ in 0..50 {
            let target = s.relocate(&mut ctx, Region::CaCentral1);
            assert_ne!(target.region(), Region::CaCentral1);
            assert!(target.is_spot());
        }
        assert_eq!(s.name(), "spotverse");
        assert_eq!(s.optimizer().config().threshold(), 6);
    }

    #[test]
    fn spotverse_distributed_start_spreads_over_top_regions() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(6);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SpotVerseStrategy::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
        let placements = s.initial_placements(&mut ctx, 8);
        let distinct: std::collections::BTreeSet<Region> =
            placements.iter().map(|p| p.region()).collect();
        assert!(distinct.len() >= 3, "distributed start uses several regions: {distinct:?}");
        assert!(placements.iter().all(|p| p.is_spot()));
    }

    #[test]
    fn spotverse_impossible_threshold_goes_on_demand() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(7);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = SpotVerseStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(14)
                .build(),
        );
        assert!(s.initial_placements(&mut ctx, 3).iter().all(|p| !p.is_spot()));
        assert!(!s.relocate(&mut ctx, Region::UsEast1).is_spot());
    }

    #[test]
    fn explain_candidates_only_for_scoring_strategies() {
        let a = assessments(SimTime::ZERO);
        assert!(SingleRegionStrategy::new(Region::UsEast1)
            .explain_candidates(&a, &[], None)
            .is_none());
        assert!(SkyPilotStrategy::new().explain_candidates(&a, &[], None).is_none());
        let s = SpotVerseStrategy::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
        let verdicts = s.explain_candidates(&a, &[], None).expect("spotverse explains");
        assert_eq!(verdicts.len(), a.len(), "one verdict per assessed region");
        let ablated = AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            MigrationPolicy::CheapestQualifying,
        );
        assert!(ablated.explain_candidates(&a, &[], Some(Region::UsEast1)).is_some());
    }

    #[test]
    #[should_panic(expected = "no regions")]
    fn naive_strategy_rejects_empty_region_list() {
        NaiveMultiRegionStrategy::new(vec![]);
    }

    #[test]
    fn ablated_stay_put_never_migrates() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(8);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            crate::optimizer::MigrationPolicy::StayPut,
        );
        assert_eq!(
            s.relocate(&mut ctx, Region::CaCentral1),
            Placement::Spot(Region::CaCentral1)
        );
        assert_eq!(s.name(), "spotverse-ablate-migration");
        assert_eq!(s.policy(), crate::optimizer::MigrationPolicy::StayPut);
    }

    #[test]
    fn ablated_cheapest_is_deterministic() {
        let a = assessments(SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(9);
        let mut ctx = ctx_with(&a, &mut rng);
        let mut s = AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            crate::optimizer::MigrationPolicy::CheapestQualifying,
        );
        let first = s.relocate(&mut ctx, Region::CaCentral1);
        for _ in 0..20 {
            assert_eq!(s.relocate(&mut ctx, Region::CaCentral1), first);
        }
    }
}
