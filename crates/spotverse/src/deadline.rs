//! Deadline-aware placement (related work §6: Wu et al., "Can't Be Late:
//! Optimizing Spot Instance Savings under Deadlines", NSDI '24).
//!
//! SpotVerse's threshold fallback switches to on-demand when *regions* look
//! risky; a deadline-aware policy switches when *time* runs out. The
//! strategy tracks each workload's deadline and remaining work, stays on
//! SpotVerse's spot selection while there is slack, and pins a workload to
//! on-demand once its remaining slack drops below a safety factor times the
//! remaining work — guaranteeing completion at on-demand reliability while
//! harvesting spot savings early.

use std::collections::BTreeMap;

use cloud_market::Region;
use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimTime};

use crate::config::{InitialPlacement, SpotVerseConfig};
use crate::optimizer::{MigrationPolicy, Optimizer, Placement};
use crate::strategy::{Strategy, StrategyContext};

/// Deadline policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    /// The absolute completion deadline for every workload in the fleet.
    pub deadline: SimTime,
    /// Nominal uninterrupted duration of one workload (used to estimate
    /// remaining work after an interruption of a restart-from-scratch
    /// workload).
    pub workload_duration: SimDuration,
    /// Switch to on-demand when
    /// `remaining slack < safety_factor × remaining work`. A factor of 1.0
    /// switches exactly when one more uninterrupted attempt barely fits;
    /// larger factors switch earlier.
    pub safety_factor: f64,
}

impl DeadlinePolicy {
    /// Whether a workload deciding at `now` with `remaining_work` left must
    /// pin to on-demand to make the deadline.
    pub fn must_go_on_demand(&self, now: SimTime, remaining_work: SimDuration) -> bool {
        let slack = self.deadline.saturating_duration_since(now);
        (slack.as_secs() as f64) < self.safety_factor * remaining_work.as_secs() as f64
    }
}

/// SpotVerse extended with a per-workload deadline guard.
///
/// Relocation decisions consult the policy: while slack remains, the normal
/// Algorithm-1 migration runs; once the guard trips for a region's
/// workload, it relaunches on-demand (and the experiment engine keeps it
/// there, since on-demand instances never interrupt).
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineAwareStrategy {
    optimizer: Optimizer,
    policy: DeadlinePolicy,
    /// Interruption counts per region (a cheap proxy for remaining work:
    /// every relocate call implies the caller lost a restart-from-scratch
    /// attempt).
    relocations: BTreeMap<Region, u32>,
    pinned_on_demand: u32,
}

impl DeadlineAwareStrategy {
    /// Creates the strategy.
    ///
    /// # Panics
    ///
    /// Panics if the safety factor is not positive and finite.
    pub fn new(config: SpotVerseConfig, policy: DeadlinePolicy) -> Self {
        assert!(
            policy.safety_factor.is_finite() && policy.safety_factor > 0.0,
            "safety factor must be positive"
        );
        DeadlineAwareStrategy {
            optimizer: Optimizer::new(config),
            policy,
            relocations: BTreeMap::new(),
            pinned_on_demand: 0,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> DeadlinePolicy {
        self.policy
    }

    /// How many relocations were pinned to on-demand by the deadline guard.
    pub fn pinned_on_demand(&self) -> u32 {
        self.pinned_on_demand
    }
}

impl Strategy for DeadlineAwareStrategy {
    fn name(&self) -> &str {
        "spotverse-deadline"
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        // At fleet start the full duration must fit; if it already does not,
        // everything goes straight to on-demand.
        if self.policy.must_go_on_demand(ctx.now, self.policy.workload_duration) {
            let od = self.optimizer.cheapest_on_demand(ctx.assessments);
            self.pinned_on_demand += n as u32;
            out.extend(std::iter::repeat_n(Placement::OnDemand(od), n));
            return;
        }
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => {
                self.optimizer.initial_placements_into(ctx.assessments, n, &[], out);
            }
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        *self.relocations.entry(previous).or_insert(0) += 1;
        // A restart-from-scratch workload needs a full fresh attempt.
        if self
            .policy
            .must_go_on_demand(ctx.now, self.policy.workload_duration)
        {
            self.pinned_on_demand += 1;
            return Placement::OnDemand(self.optimizer.cheapest_on_demand(ctx.assessments));
        }
        self.optimizer
            .migration_target(ctx.assessments, previous, MigrationPolicy::RandomTopR, &[], ctx.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::{InstanceType, PlacementScore, StabilityScore, UsdPerHour};
    use sim_kernel::SimRng;

    use crate::optimizer::RegionAssessment;

    fn assessments() -> Vec<RegionAssessment> {
        vec![
            RegionAssessment {
                region: Region::ApNortheast3,
                placement: PlacementScore::new(7).unwrap(),
                stability: StabilityScore::new(3).unwrap(),
                spot_price: UsdPerHour::new(0.086),
                on_demand_price: UsdPerHour::new(0.238),
            },
            RegionAssessment {
                region: Region::UsEast1,
                placement: PlacementScore::new(3).unwrap(),
                stability: StabilityScore::new(1).unwrap(),
                spot_price: UsdPerHour::new(0.0455),
                on_demand_price: UsdPerHour::new(0.192),
            },
        ]
    }

    fn policy(deadline_hours: u64) -> DeadlinePolicy {
        DeadlinePolicy {
            deadline: SimTime::from_hours(deadline_hours),
            workload_duration: SimDuration::from_hours(10),
            safety_factor: 1.2,
        }
    }

    #[test]
    fn guard_math() {
        let p = policy(24);
        // At t=0 slack is 24 h, 1.2 × 10 h = 12 h fits.
        assert!(!p.must_go_on_demand(SimTime::ZERO, SimDuration::from_hours(10)));
        // At t=13 slack is 11 h < 12 h: must switch.
        assert!(p.must_go_on_demand(SimTime::from_hours(13), SimDuration::from_hours(10)));
        // Past the deadline, slack saturates at zero.
        assert!(p.must_go_on_demand(SimTime::from_hours(30), SimDuration::from_secs(1)));
    }

    #[test]
    fn relocates_on_spot_while_slack_remains() {
        let a = assessments();
        let mut rng = SimRng::seed_from_u64(1);
        let mut ctx = StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::from_hours(2),
            assessments: &a,
            quarantined: &[],
            rng: &mut rng,
        };
        let mut s = DeadlineAwareStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            policy(48),
        );
        let p = s.relocate(&mut ctx, Region::UsEast1);
        assert!(p.is_spot());
        assert_eq!(s.pinned_on_demand(), 0);
    }

    #[test]
    fn pins_to_on_demand_when_slack_runs_out() {
        let a = assessments();
        let mut rng = SimRng::seed_from_u64(2);
        let mut ctx = StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::from_hours(14), // slack 10 h < 12 h needed
            assessments: &a,
            quarantined: &[],
            rng: &mut rng,
        };
        let mut s = DeadlineAwareStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            policy(24),
        );
        let p = s.relocate(&mut ctx, Region::UsEast1);
        assert!(!p.is_spot());
        assert_eq!(p.region(), Region::UsEast1, "cheapest on-demand in the fixture");
        assert_eq!(s.pinned_on_demand(), 1);
    }

    #[test]
    fn hopeless_deadline_goes_straight_to_on_demand() {
        let a = assessments();
        let mut rng = SimRng::seed_from_u64(3);
        let mut ctx = StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::from_hours(20),
            assessments: &a,
            quarantined: &[],
            rng: &mut rng,
        };
        let mut s = DeadlineAwareStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            policy(24),
        );
        let placements = s.initial_placements(&mut ctx, 5);
        assert!(placements.iter().all(|p| !p.is_spot()));
        assert_eq!(s.pinned_on_demand(), 5);
        assert_eq!(s.name(), "spotverse-deadline");
        assert_eq!(s.policy().safety_factor, 1.2);
    }

    #[test]
    #[should_panic(expected = "safety factor")]
    fn bad_safety_factor_rejected() {
        DeadlineAwareStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            DeadlinePolicy {
                deadline: SimTime::from_hours(1),
                workload_duration: SimDuration::from_hours(1),
                safety_factor: 0.0,
            },
        );
    }
}
