//! The workload-agnostic control plane.
//!
//! Everything the Controller shares across workloads lives here: the
//! simulated cloud services (EC2, object store, shared filesystem, KV,
//! functions, metrics), the Monitor collection pipeline with its
//! [`SnapshotMemo`], the [`RegionHealth`] circuit breakers and telemetry
//! freshness tracking, the chaos overlay wiring, the checkpoint store
//! provisioning, and the run's [`Tracer`].
//!
//! The control plane knows nothing about individual workloads — per-
//! workload state (instance, progress, checkpoint log, deadline) belongs
//! to [`WorkloadRuntime`](crate::workload), and the event loop that
//! multiplexes workloads over this shared plane is
//! [`run_fleet`](crate::fleet::run_fleet).

use std::sync::Arc;

use aws_stack::{
    FileSystemId, FunctionConfig, FunctionRuntime, KvStore, MetricsService, ObjectStore,
    SharedFileSystem,
};
use chaos::ChaosEngine;
use cloud_compute::{Ec2, Ec2Config};
use cloud_market::{InstanceType, Region, SpotMarket};
use sim_kernel::{SimDuration, SimRng, SimTime};

use crate::experiment::{CheckpointBackend, CheckpointTelemetry, INTERRUPTION_HANDLER, LOG_BUCKET};
use crate::health::{
    BreakerTransition, HealthConfig, RegionHealth, ResilienceTelemetry, TelemetryFreshness,
};
use crate::monitor::{CollectOutcome, Monitor, MonitorError, SnapshotMemo};
use crate::optimizer::RegionAssessment;
use crate::trace::{TraceConfig, TraceEvent, Tracer};

/// The shared control plane: simulated cloud services, the Monitor
/// collection pipeline, region-health breakers, chaos wiring, and the
/// decision tracer. One instance serves every workload in a run.
pub struct ControlPlane {
    pub(crate) market: Arc<SpotMarket>,
    pub(crate) ec2: Ec2,
    pub(crate) s3: ObjectStore,
    pub(crate) efs: SharedFileSystem,
    pub(crate) efs_id: Option<FileSystemId>,
    pub(crate) kv: KvStore,
    pub(crate) functions: FunctionRuntime,
    pub(crate) metrics: MetricsService,
    pub(crate) monitor: Monitor,
    pub(crate) monitor_memo: SnapshotMemo,
    pub(crate) monitor_pipeline: bool,
    pub(crate) telemetry_ttl: SimDuration,
    pub(crate) checkpoint_backend: CheckpointBackend,
    pub(crate) chaos: Option<ChaosEngine>,
    pub(crate) telemetry: CheckpointTelemetry,
    pub(crate) backoff_rng: SimRng,
    pub(crate) monitor_backoff: u32,
    pub(crate) health: RegionHealth,
    pub(crate) freshness: TelemetryFreshness,
    pub(crate) quarantined_decisions: u64,
    pub(crate) collect_failing: bool,
    pub(crate) degraded_since: Option<SimTime>,
    pub(crate) tracer: Tracer,
    /// Serve decisions from one parsed snapshot per collection epoch
    /// instead of re-scanning and re-parsing the KV rows per decision.
    /// The underlying scan is unbilled and side-effect-free, so the two
    /// modes are observationally identical; `false` is the ablation arm
    /// the `fleet_scale` bench measures against.
    pub(crate) snapshot_reuse: bool,
    /// The parsed snapshot for the current collection epoch: assessments
    /// in catalog order plus the oldest `collected_at` stamp. Cleared by
    /// every collection attempt that could have touched the rows. Shared
    /// by `Arc` so serving a decision is a refcount bump, not a per-
    /// decision `Vec` clone.
    pub(crate) snapshot_cache: Option<(Arc<[RegionAssessment]>, SimTime)>,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("monitor_pipeline", &self.monitor_pipeline)
            .field("checkpoint_backend", &self.checkpoint_backend)
            .field("chaos", &self.chaos.is_some())
            .finish_non_exhaustive()
    }
}

impl ControlPlane {
    /// Builds the control plane and provisions the serverless stack:
    /// the Monitor's function and snapshot table, the interruption
    /// handler, the log bucket, the checkpoint KV table, and (for the
    /// shared-filesystem backend) an EFS mounted in every region. Each
    /// managed service gets its own seeded fault stream when a chaos
    /// engine is active.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        market: Arc<SpotMarket>,
        instance_type: InstanceType,
        seed: u64,
        monitor_pipeline: bool,
        checkpoint_backend: CheckpointBackend,
        health: &HealthConfig,
        trace: &TraceConfig,
        chaos: Option<ChaosEngine>,
        root_rng: &SimRng,
    ) -> Self {
        let mut ec2 = Ec2::new(Arc::clone(&market), Ec2Config::default(), root_rng.fork("ec2"));
        if let Some(engine) = &chaos {
            ec2.set_fault_injector(engine.compute_injector());
        }
        let mut cp = ControlPlane {
            market,
            ec2,
            s3: ObjectStore::new(),
            efs: SharedFileSystem::new(),
            efs_id: None,
            kv: KvStore::new(),
            functions: FunctionRuntime::new(),
            metrics: MetricsService::new(Region::UsEast1),
            monitor: Monitor::new(instance_type, Region::UsEast1),
            monitor_memo: SnapshotMemo::new(),
            monitor_pipeline,
            telemetry_ttl: health.telemetry_ttl,
            checkpoint_backend,
            chaos,
            telemetry: CheckpointTelemetry::default(),
            backoff_rng: root_rng.fork("backoff"),
            monitor_backoff: 0,
            health: RegionHealth::new(health.breaker.clone(), seed),
            freshness: TelemetryFreshness::default(),
            quarantined_decisions: 0,
            collect_failing: false,
            degraded_since: None,
            tracer: Tracer::new(trace),
            snapshot_reuse: true,
            snapshot_cache: None,
        };

        // Hand each managed service its own seeded fault stream.
        if let Some(engine) = &cp.chaos {
            cp.kv.set_fault_injector(engine.service_injector("kv"));
            cp.s3.set_fault_injector(engine.service_injector("s3"));
            cp.functions.set_fault_injector(engine.service_injector("fn"));
        }

        // Provision the serverless stack.
        cp.monitor.provision(&mut cp.functions, &mut cp.kv);
        cp.functions
            .register(INTERRUPTION_HANDLER, Region::UsEast1, FunctionConfig::default());
        cp.s3
            .create_bucket(LOG_BUCKET, Region::UsEast1)
            .expect("fresh object store");
        cp.kv
            .create_table("spotverse-checkpoints", Region::UsEast1)
            .expect("fresh kv store");
        if cp.checkpoint_backend == CheckpointBackend::SharedFileSystem {
            let fs = cp.efs.create(Region::UsEast1);
            for region in Region::ALL {
                cp.efs.mount(fs, region).expect("fresh filesystem");
            }
            cp.efs_id = Some(fs);
        }
        cp
    }

    /// Current optimizer inputs plus whether the decision must *degrade*.
    ///
    /// With the pipeline enabled, the Monitor's latest persisted snapshot
    /// is served as long as it is within the telemetry TTL; while
    /// collection is failing, each such serve is a counted *stale serve*
    /// of last-good data. Past the TTL the snapshot is still returned but
    /// flagged degraded: the caller places cheapest-on-demand instead of
    /// trusting expired metrics. Without the pipeline (or before the
    /// first snapshot) decisions read the market directly — either way
    /// they observe it *through* any active fault overlay.
    pub(crate) fn decision_inputs(&mut self, now: SimTime) -> (Arc<[RegionAssessment]>, bool) {
        if self.monitor_pipeline {
            let ttl = self.telemetry_ttl;
            if self.snapshot_reuse {
                // Batched assessment: every decision sharing a snapshot
                // epoch reuses one parsed read. The rows only change when
                // a collection runs, which clears the cache, so this
                // serves the exact values the per-decision scan would.
                if self.snapshot_cache.is_none() {
                    self.snapshot_cache = self
                        .monitor
                        .read_snapshot(&self.kv)
                        .ok()
                        .map(|(rows, at)| (rows.into(), at));
                }
                if let Some((rows, collected_at)) = &self.snapshot_cache {
                    let snapshot = Arc::clone(rows);
                    let age = now.saturating_duration_since(*collected_at);
                    if age <= ttl {
                        if self.collect_failing {
                            self.freshness.stale_serves += 1;
                            self.freshness.max_staleness = self.freshness.max_staleness.max(age);
                            self.tracer.record(now, TraceEvent::StaleServe { age });
                        }
                        return (snapshot, false);
                    }
                    self.freshness.degraded_decisions += 1;
                    self.freshness.max_staleness = self.freshness.max_staleness.max(age);
                    if self.degraded_since.is_none() {
                        self.degraded_since = Some(now);
                    }
                    self.tracer.record(now, TraceEvent::DegradedDecision { age });
                    return (snapshot, true);
                }
                // No snapshot yet: fall through to the fresh market read,
                // exactly like the uncached NoSnapshot path.
            } else {
                match self.monitor.assessments_no_older_than(&self.kv, now, ttl) {
                    Ok((snapshot, age)) => {
                        if self.collect_failing {
                            self.freshness.stale_serves += 1;
                            self.freshness.max_staleness = self.freshness.max_staleness.max(age);
                            self.tracer.record(now, TraceEvent::StaleServe { age });
                        }
                        return (snapshot.into(), false);
                    }
                    Err(MonitorError::Stale { .. }) => {
                        if let Ok((snapshot, age)) =
                            self.monitor.latest_assessments_with_age(&self.kv, now)
                        {
                            self.freshness.degraded_decisions += 1;
                            self.freshness.max_staleness = self.freshness.max_staleness.max(age);
                            if self.degraded_since.is_none() {
                                self.degraded_since = Some(now);
                            }
                            self.tracer.record(now, TraceEvent::DegradedDecision { age });
                            return (snapshot.into(), true);
                        }
                    }
                    Err(_) => {}
                }
            }
        }
        let overlay = self.chaos.as_ref().map(|c| c.overlay());
        let snapshot = self
            .monitor
            .fresh_assessments_with_overlay(&self.market, overlay, now)
            .expect("market assessments within horizon");
        (snapshot.into(), false)
    }

    /// Marks the collection pipeline healthy again and settles any open
    /// degraded-placement interval.
    pub(crate) fn note_collection_success(&mut self, now: SimTime) {
        self.collect_failing = false;
        if let Some(since) = self.degraded_since.take() {
            let duration = now.saturating_duration_since(since);
            self.freshness.degraded_time += duration;
            self.tracer.record(now, TraceEvent::DegradedInterval { duration });
        }
    }

    /// Marks the collection pipeline failing: subsequent decisions served
    /// from the persisted snapshot count as stale serves.
    pub(crate) fn note_collection_failure(&mut self) {
        self.collect_failing = true;
        self.freshness.collection_failures += 1;
    }

    /// Logs a breaker state change reported by a `record_*` observation.
    pub(crate) fn trace_breaker(&mut self, now: SimTime, transition: Option<BreakerTransition>) {
        if let Some(t) = transition {
            self.tracer
                .record(now, TraceEvent::Breaker { region: t.region, from: t.from, to: t.to });
        }
    }

    /// One monitor collection cycle, observed through the fault overlay.
    /// Memoized per market epoch: a tick inside the hour of the last
    /// successful collection (with an unchanged overlay window set) skips
    /// the redundant market reads and KV writes.
    pub(crate) fn run_monitor_collection(
        &mut self,
        now: SimTime,
    ) -> Result<CollectOutcome, MonitorError> {
        let overlay = self.chaos.as_ref().map(|c| c.overlay());
        let result = self.monitor.collect_memoized(
            &self.market,
            overlay,
            now,
            &mut self.monitor_memo,
            &mut self.functions,
            &mut self.kv,
            &mut self.metrics,
            self.ec2.ledger_mut(),
        );
        // Any attempt that was not an epoch-memo hit may have rewritten
        // snapshot rows — including a *failed* cycle that persisted some
        // rows before the fault — so the parsed-snapshot cache must be
        // rebuilt on the next decision.
        if !matches!(result, Ok(CollectOutcome::Reused)) {
            self.snapshot_cache = None;
        }
        result
    }

    /// The run's resilience telemetry, assembled from the breakers and
    /// freshness counters at the end of a run.
    pub(crate) fn resilience(&self) -> ResilienceTelemetry {
        ResilienceTelemetry {
            breaker_trips: self.health.trips(),
            half_open_probes: self.health.probes(),
            probe_failures: self.health.probe_failures(),
            quarantined_decisions: self.quarantined_decisions,
            freshness: self.freshness,
        }
    }
}

/// The degraded-mode placement: the cheapest on-demand region by price,
/// ties broken by region name. On-demand prices are static catalog data,
/// so they stay trustworthy even when every dynamic metric has expired.
pub(crate) fn cheapest_on_demand(assessments: &[RegionAssessment]) -> Region {
    assessments
        .iter()
        .min_by(|a, b| {
            a.on_demand_price
                .rate()
                .total_cmp(&b.on_demand_price.rate())
                .then_with(|| a.region.name().cmp(b.region.name()))
        })
        .expect("assessments cover at least one region")
        .region
}
