//! Report post-processing: strategy comparisons and the paper's
//! normalized-cost metric.

use cloud_market::Usd;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentReport;

/// Percentage change helpers between a baseline and a treatment report —
/// the deltas the paper headlines ("52% cost reduction", "39% fewer
/// interruptions").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Cost reduction relative to the baseline, in percent (positive =
    /// treatment cheaper).
    pub cost_reduction_pct: f64,
    /// Completion-time (makespan) reduction in percent.
    pub time_reduction_pct: f64,
    /// Interruption-count reduction in percent.
    pub interruption_reduction_pct: f64,
}

/// Compares a treatment run against a baseline run.
///
/// # Panics
///
/// Panics if the baseline has zero cost or zero makespan (nothing ran).
pub fn compare(baseline: &ExperimentReport, treatment: &ExperimentReport) -> Comparison {
    let base_cost = baseline.cost.total.amount();
    let base_time = baseline.makespan.as_hours_f64();
    assert!(base_cost > 0.0, "baseline spent nothing");
    assert!(base_time > 0.0, "baseline ran nothing");
    let cost_reduction_pct = (1.0 - treatment.cost.total.amount() / base_cost) * 100.0;
    let time_reduction_pct = (1.0 - treatment.makespan.as_hours_f64() / base_time) * 100.0;
    let interruption_reduction_pct = if baseline.interruptions == 0 {
        0.0
    } else {
        (1.0 - treatment.interruptions as f64 / baseline.interruptions as f64) * 100.0
    };
    Comparison {
        cost_reduction_pct,
        time_reduction_pct,
        interruption_reduction_pct,
    }
}

/// The paper's Figure 10 metric: a run's total cost divided by the cost of
/// running the same fleet on the cheapest on-demand instances. Values below
/// 1 are savings.
///
/// # Panics
///
/// Panics if `on_demand_cost` is zero.
pub fn normalized_cost(report: &ExperimentReport, on_demand_cost: Usd) -> f64 {
    report.cost.total.ratio_to(on_demand_cost)
}

/// One-line human-readable summary of a run.
pub fn summary_line(report: &ExperimentReport) -> String {
    format!(
        "{:<20} completed {:>3}/{:<3}  makespan {:>10}  interruptions {:>4}  cost {:>9}",
        report.strategy,
        report.completed,
        report.workloads,
        report.makespan.to_string(),
        report.interruptions,
        report.cost.total.to_string(),
    )
}

/// One-line summary of a run's resilience counters, or `None` when the
/// control plane never engaged — so fault-free output stays byte-identical
/// to a build without the control plane.
pub fn resilience_summary(report: &ExperimentReport) -> Option<String> {
    let r = &report.resilience;
    if r == &Default::default() {
        return None;
    }
    Some(format!(
        "{:<20} trips {:>3}  probes {:>3}  stale {:>4}  degraded {:>6.1} h",
        report.strategy,
        r.breaker_trips,
        r.half_open_probes,
        r.freshness.stale_serves,
        r.freshness.degraded_time.as_hours_f64(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::CostBreakdown;
    use sim_kernel::{SimDuration, TimeSeries};
    use std::collections::BTreeMap;

    fn report(cost: f64, makespan_h: u64, interruptions: u64) -> ExperimentReport {
        ExperimentReport {
            strategy: "test".into(),
            workloads: 10,
            completed: 10,
            makespan: SimDuration::from_hours(makespan_h),
            mean_completion: SimDuration::from_hours(makespan_h / 2),
            interruptions,
            interruptions_by_region: BTreeMap::new(),
            cumulative_interruptions: TimeSeries::new("i"),
            completions_over_time: TimeSeries::new("c"),
            launches_by_region: BTreeMap::new(),
            cost: CostBreakdown {
                total: Usd::new(cost),
                spot_instances: Usd::new(cost),
                on_demand_instances: Usd::ZERO,
                data_transfer: Usd::ZERO,
                shared_services: Usd::ZERO,
            },
            instance_hours: 0.0,
            spot_attempts: 0,
            spot_fulfillments: 0,
            checkpoints: Default::default(),
            resilience: Default::default(),
            trace: None,
        }
    }

    #[test]
    fn compare_computes_reductions() {
        let baseline = report(73.92, 33, 114);
        let treatment = report(41.46, 14, 69);
        let c = compare(&baseline, &treatment);
        assert!((c.cost_reduction_pct - 43.9).abs() < 0.2, "{}", c.cost_reduction_pct);
        assert!((c.time_reduction_pct - 57.6).abs() < 0.2, "{}", c.time_reduction_pct);
        assert!((c.interruption_reduction_pct - 39.5).abs() < 0.2);
    }

    #[test]
    fn compare_handles_zero_baseline_interruptions() {
        let baseline = report(10.0, 10, 0);
        let treatment = report(5.0, 5, 0);
        assert_eq!(compare(&baseline, &treatment).interruption_reduction_pct, 0.0);
    }

    #[test]
    fn normalized_cost_below_one_is_savings() {
        let r = report(36.0, 12, 40);
        assert!((normalized_cost(&r, Usd::new(77.81)) - 0.4627).abs() < 0.001);
        let expensive = report(100.0, 12, 40);
        assert!(normalized_cost(&expensive, Usd::new(77.81)) > 1.0);
    }

    #[test]
    fn summary_line_contains_key_fields() {
        let line = summary_line(&report(41.46, 14, 69));
        assert!(line.contains("test"));
        assert!(line.contains("69"));
        assert!(line.contains("$41.46"));
        assert!(line.contains("10/10"));
    }

    #[test]
    fn resilience_summary_is_silent_until_the_plane_engages() {
        let mut r = report(10.0, 10, 0);
        assert_eq!(resilience_summary(&r), None, "all-zero telemetry prints nothing");
        r.resilience.breaker_trips = 2;
        r.resilience.freshness.stale_serves = 5;
        let line = resilience_summary(&r).unwrap();
        assert!(line.contains("trips   2"));
        assert!(line.contains("stale    5"));
    }
}
