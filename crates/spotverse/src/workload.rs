//! The per-workload runtime: one workload's state machine over the shared
//! control plane.
//!
//! A [`WorkloadRuntime`] owns exactly the state that belongs to a single
//! workload — its running instance, workflow invocation progress,
//! checkpoint ledger, arrival time, deadline, and billed-cost ledger —
//! and steps through launch → run → interrupted → migrate → done (the
//! [`WorkloadPhase`] lifecycle). Everything shared across workloads
//! (market telemetry, breakers, chaos, the tracer) stays in the
//! [`ControlPlane`](crate::controlplane::ControlPlane); the fleet event
//! loop in [`crate::fleet`] multiplexes many runtimes over one scheduler.

use aws_stack::{KvError, ObjectBody, ObjectStoreError};
use bio_workloads::WorkloadSpec;
use cloud_compute::{InstanceId, INTERRUPTION_NOTICE};
use cloud_market::{Region, Usd};
use galaxy_flow::WorkflowInvocation;
use sim_kernel::{Scheduler, SimDuration, SimTime};

use crate::controlplane::ControlPlane;
use crate::experiment::{CheckpointBackend, LOG_BUCKET};
use crate::fleet::Event;
use crate::optimizer::Placement;
use crate::resilience::{retry_with_backoff, BackoffPolicy};
use crate::trace::TraceEvent;

/// Where a workload is in its lifecycle. Purely observational: phases are
/// derived from the same transitions the event loop already performs, so
/// tracking them changes no simulation behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPhase {
    /// Not yet arrived (fleet mode) or not yet placed.
    Pending,
    /// A placement was chosen; the instance request is in flight or open.
    Requesting,
    /// An instance is up and executing the workflow.
    Running,
    /// Interrupted and awaiting its relaunch in the migration target.
    Migrating,
    /// Finished before its deadline.
    Completed,
    /// Hit its deadline unfinished (fleet mode only).
    Expired,
}

#[derive(Debug)]
pub(crate) struct RunningInstance {
    pub(crate) instance: InstanceId,
    pub(crate) region: Region,
    pub(crate) ready_at: SimTime,
}

/// A checkpoint generation that finished uploading before its instance
/// was reclaimed.
#[derive(Debug, Clone, Copy)]
struct DurableCheckpoint {
    generation: u64,
    units: usize,
    written_at: SimTime,
}

/// A checkpoint upload still being judged: durable only if it completed
/// before the reclaim and its KV record landed.
#[derive(Debug, Clone, Copy)]
struct PendingCheckpoint {
    generation: u64,
    units: usize,
    completes_at: SimTime,
    recorded: bool,
}

/// Per-workload checkpoint ledger: the durable generations (newest last)
/// and the write currently in flight.
#[derive(Debug, Default)]
pub(crate) struct CheckpointLog {
    durable: Vec<DurableCheckpoint>,
    pending: Option<PendingCheckpoint>,
    next_generation: u64,
}

/// One workload's runtime state.
#[derive(Debug)]
pub(crate) struct WorkloadRuntime {
    pub(crate) spec: WorkloadSpec,
    pub(crate) invocation: WorkflowInvocation,
    pub(crate) placement: Placement,
    pub(crate) running: Option<RunningInstance>,
    pub(crate) completed_at: Option<SimTime>,
    pub(crate) launches: u32,
    pub(crate) checkpoints: CheckpointLog,
    /// Absolute arrival time (== fleet start for a classic experiment).
    pub(crate) arrival: SimTime,
    /// Absolute per-workload deadline (arrival + max runtime).
    pub(crate) deadline: SimTime,
    pub(crate) interruptions: u64,
    /// Instance spend billed to this workload at its terminations.
    pub(crate) billed: Usd,
    pub(crate) expired: bool,
    pub(crate) phase: WorkloadPhase,
    /// The object-store/EFS key this workload's working set lives under,
    /// interned at construction: the hot paths (notice uploads, resume
    /// downloads, proactive ticks) borrow or clone it instead of
    /// re-formatting the same string on every event.
    checkpoint_key: String,
}

impl WorkloadRuntime {
    pub(crate) fn new(spec: &WorkloadSpec, arrival: SimTime, deadline: SimTime) -> Self {
        let workflow = spec.build_workflow();
        WorkloadRuntime {
            checkpoint_key: format!("checkpoints/{}/dataset", spec.id),
            spec: spec.clone(),
            invocation: WorkflowInvocation::new(&workflow),
            placement: Placement::Spot(Region::UsEast1), // overwritten at arrival
            running: None,
            completed_at: None,
            launches: 0,
            checkpoints: CheckpointLog::default(),
            arrival,
            deadline,
            interruptions: 0,
            billed: Usd::ZERO,
            expired: false,
            phase: WorkloadPhase::Pending,
        }
    }

    /// Whether the event loop still owes this workload events.
    pub(crate) fn settled(&self) -> bool {
        self.completed_at.is_some() || self.expired
    }

    /// An instance came up for this workload: resume from the checkpoint
    /// store if mid-flight, then schedule either the completion or the
    /// notice + reclaim pair.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin_execution(
        &mut self,
        w: usize,
        region: Region,
        instance: InstanceId,
        ready_at: SimTime,
        interruption_at: Option<SimTime>,
        now: SimTime,
        scheduler: &mut Scheduler<'_, Event>,
        cp: &mut ControlPlane,
    ) {
        self.launches += 1;
        self.phase = WorkloadPhase::Running;
        // Checkpoint workloads resuming mid-flight first re-download the
        // working set from the log bucket.
        let mut exec_start = ready_at;
        if self.spec.kind.is_checkpointable() && self.invocation.units_done() > 0 {
            let key = &self.checkpoint_key;
            match cp.checkpoint_backend {
                CheckpointBackend::ObjectStore => {
                    if let Ok((_, outcome)) =
                        cp.s3.get_object(LOG_BUCKET, key, region, now, cp.ec2.ledger_mut())
                    {
                        exec_start = exec_start.max(outcome.completes_at);
                    }
                }
                CheckpointBackend::SharedFileSystem => {
                    let fs = cp.efs_id.expect("efs provisioned for this backend");
                    if let Ok((_, outcome)) =
                        cp.efs.read(fs, key, region, now, cp.ec2.ledger_mut())
                    {
                        exec_start = exec_start.max(outcome.completes_at);
                    }
                }
            }
        }
        let remaining = self.invocation.remaining_duration();
        let completion_at = exec_start + remaining;
        self.running = Some(RunningInstance {
            instance,
            region,
            ready_at: exec_start,
        });
        match interruption_at {
            Some(at) if at < completion_at => {
                // Chaos may shorten or lose the two-minute warning; a
                // zero-length notice still fires at the reclaim instant,
                // before the Reclaim event (FIFO), so the upload starts —
                // but can never finish in time and is judged torn.
                let warning = match cp.chaos.as_mut() {
                    Some(c) => c.notice_duration(region, at),
                    None => INTERRUPTION_NOTICE,
                };
                if warning < INTERRUPTION_NOTICE {
                    cp.tracer.record(
                        now,
                        TraceEvent::ChaosFault { kind: "notice_shortened", region: Some(region) },
                    );
                }
                let notice_at = (at - warning).max(now);
                scheduler.schedule_at(notice_at, Event::Notice(w, instance));
                scheduler.schedule_at(at, Event::Reclaim(w, instance));
            }
            _ => {
                scheduler.schedule_at(completion_at, Event::Complete(w, instance));
            }
        }
    }

    /// The interruption-notice handler: persist a progress record and
    /// upload the working set inside the notice window. Neither write is
    /// trusted yet — durability is judged at the reclaim.
    pub(crate) fn handle_notice(
        &mut self,
        w: usize,
        instance: InstanceId,
        now: SimTime,
        cp: &mut ControlPlane,
    ) {
        let Some(running) = &self.running else {
            return;
        };
        if running.instance != instance || !self.spec.kind.is_checkpointable() {
            return;
        }
        self.save_checkpoint(w, now, cp);
    }

    /// A proactive checkpoint tick: persist progress mid-run without
    /// waiting for a two-minute notice. Skipped while a previous upload
    /// is still in flight — piling a second upload onto an unfinished one
    /// would tear the older generation for nothing.
    pub(crate) fn proactive_checkpoint(&mut self, w: usize, now: SimTime, cp: &mut ControlPlane) {
        self.promote_settled_pending(w, now, cp);
        if self.checkpoints.pending.is_some() {
            return;
        }
        self.save_checkpoint(w, now, cp);
    }

    /// Promotes a finished in-flight checkpoint to the durable log.
    /// Durability needs both the completed upload and the KV record;
    /// anything else is torn. In the classic notice-only engine the
    /// pending slot is always consumed at the reclaim before another save
    /// can start, so this is a structural no-op on existing runs.
    fn promote_settled_pending(&mut self, w: usize, now: SimTime, cp: &mut ControlPlane) {
        let Some(p) = self.checkpoints.pending else {
            return;
        };
        if p.completes_at > now {
            return;
        }
        self.checkpoints.pending = None;
        if p.recorded {
            self.checkpoints.durable.push(DurableCheckpoint {
                generation: p.generation,
                units: p.units,
                written_at: p.completes_at,
            });
        } else {
            cp.telemetry.torn_writes += 1;
            cp.tracer
                .record(now, TraceEvent::CheckpointTorn { workload: w, generation: p.generation });
        }
    }

    /// Starts a checkpoint save at `now`: a KV progress record followed
    /// by the working-set upload. Shared between the notice handler and
    /// the proactive cadence path.
    fn save_checkpoint(&mut self, w: usize, now: SimTime, cp: &mut ControlPlane) {
        let Some(running) = &self.running else {
            return;
        };
        let region = running.region;
        let ready_at = running.ready_at;
        // Judge whatever save was still in flight: a finished upload is
        // promoted, an unfinished one is superseded (torn) by this save.
        // Both branches are unreachable on notice-only runs.
        self.promote_settled_pending(w, now, cp);
        if let Some(p) = self.checkpoints.pending.take() {
            cp.telemetry.torn_writes += 1;
            cp.tracer
                .record(now, TraceEvent::CheckpointTorn { workload: w, generation: p.generation });
        }
        // Units completed through the notice instant are what survives.
        let elapsed = now.saturating_duration_since(ready_at);
        let units_done = self.invocation.units_done()
            + self
                .invocation
                .plan()
                .units_completed_within(self.invocation.units_done(), elapsed);
        let spec_id = &self.spec.id;
        let generation = self.checkpoints.next_generation;
        self.checkpoints.next_generation += 1;
        cp.telemetry.writes += 1;
        let policy = BackoffPolicy::default();

        // KV progress record, retried with jittered backoff when throttled.
        let (kv, ec2, rng) = (&mut cp.kv, &mut cp.ec2, &mut cp.backoff_rng);
        let record = retry_with_backoff(
            &policy,
            rng,
            now,
            |e| matches!(e, KvError::Throttled { .. }),
            |at| {
                kv.update_item("spotverse-checkpoints", spec_id, at, ec2.ledger_mut(), |item| {
                    item.insert("units_done".into(), aws_stack::AttrValue::N(units_done as f64));
                    item.insert("generation".into(), aws_stack::AttrValue::N(generation as f64));
                    item.insert("at".into(), aws_stack::AttrValue::N(at.as_secs() as f64));
                })
            },
        );
        cp.telemetry.throttled_retries += u64::from(record.retries);
        let recorded = record.result.is_ok();

        // The working-set upload starts once the record attempt settled.
        let key = &self.checkpoint_key;
        let completes_at = match cp.checkpoint_backend {
            CheckpointBackend::ObjectStore => {
                let (s3, ec2, rng) = (&mut cp.s3, &mut cp.ec2, &mut cp.backoff_rng);
                let put = retry_with_backoff(
                    &policy,
                    rng,
                    record.finished_at,
                    |e| matches!(e, ObjectStoreError::Throttled { .. }),
                    |at| {
                        s3.put_object(
                            LOG_BUCKET,
                            key.clone(),
                            ObjectBody::Synthetic {
                                size_gib: bio_workloads::ngs_preprocessing::DATASET_GIB,
                            },
                            region,
                            at,
                            ec2.ledger_mut(),
                        )
                    },
                );
                cp.telemetry.throttled_retries += u64::from(put.retries);
                put.result.ok().map(|outcome| outcome.completes_at)
            }
            CheckpointBackend::SharedFileSystem => {
                let fs = cp.efs_id.expect("efs provisioned for this backend");
                cp.efs
                    .write(
                        fs,
                        key.clone(),
                        bio_workloads::ngs_preprocessing::DATASET_GIB,
                        region,
                        record.finished_at,
                        cp.ec2.ledger_mut(),
                    )
                    .ok()
                    .map(|outcome| outcome.completes_at)
            }
        };
        cp.tracer.record(
            now,
            TraceEvent::CheckpointSave { workload: w, generation, units: units_done, recorded },
        );
        match completes_at {
            Some(completes_at) => {
                self.checkpoints.pending = Some(PendingCheckpoint {
                    generation,
                    units: units_done,
                    completes_at,
                    recorded,
                });
            }
            // Throttled out before the upload even started: nothing to
            // judge at reclaim, the generation is simply lost.
            None => {
                cp.telemetry.torn_writes += 1;
                cp.tracer.record(now, TraceEvent::CheckpointTorn { workload: w, generation });
            }
        }
    }

    /// Judges the in-flight checkpoint at a reclaim and pins the
    /// invocation to the newest durable, uncorrupted generation.
    ///
    /// A pending upload only becomes durable if it finished before the
    /// reclaim *and* its KV record landed — a 0-second notice starts the
    /// upload at the reclaim instant, so it is always torn. Durable
    /// generations that read back corrupt are discarded in favour of
    /// older ones; with none left the workload restarts from scratch.
    pub(crate) fn settle_checkpoints(&mut self, w: usize, now: SimTime, cp: &mut ControlPlane) {
        if let Some(p) = self.checkpoints.pending.take() {
            if p.recorded && p.completes_at <= now {
                self.checkpoints.durable.push(DurableCheckpoint {
                    generation: p.generation,
                    units: p.units,
                    written_at: p.completes_at,
                });
            } else {
                cp.telemetry.torn_writes += 1;
                cp.tracer
                    .record(now, TraceEvent::CheckpointTorn { workload: w, generation: p.generation });
            }
        }
        let prior = self.invocation.units_done();
        let mut dropped = 0u64;
        let resume_units = loop {
            let Some(top) = self.checkpoints.durable.last().copied() else {
                break 0;
            };
            let corrupt = cp.chaos.as_ref().is_some_and(|c| {
                c.checkpoint_corrupted(&self.spec.id, top.generation, top.written_at)
            });
            if corrupt {
                dropped += 1;
                self.checkpoints.durable.pop();
                cp.tracer.record(
                    now,
                    TraceEvent::ChaosFault { kind: "checkpoint_corruption", region: None },
                );
            } else {
                break top.units;
            }
        };
        cp.telemetry.corrupt_reads += dropped;
        if dropped > 0 && resume_units > 0 {
            cp.telemetry.generation_fallbacks += 1;
        }
        let scratch = resume_units == 0 && prior > 0;
        if scratch {
            cp.telemetry.scratch_restarts += 1;
        }
        cp.tracer.record(
            now,
            TraceEvent::CheckpointRestore {
                workload: w,
                units: resume_units,
                corrupt_dropped: dropped,
                scratch,
            },
        );
        self.invocation
            .resume_from(resume_units)
            .expect("checkpoint within plan");
    }

    /// The per-workload slice of a fleet report.
    pub(crate) fn report(&self, id: usize) -> WorkloadReport {
        WorkloadReport {
            workload: id,
            id: self.spec.id.clone(),
            arrival: self.arrival,
            phase: self.phase,
            completed: self.completed_at.is_some(),
            expired: self.expired,
            completion_time: self
                .completed_at
                .map(|at| at.saturating_duration_since(self.arrival)),
            interruptions: self.interruptions,
            launches: self.launches,
            billed: self.billed,
            final_region: self.placement.region(),
        }
    }
}

/// One workload's outcome inside a [`FleetReport`](crate::fleet::FleetReport).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// The workload's index in the fleet.
    pub workload: usize,
    /// The workload spec id (e.g. `"w-07"`).
    pub id: String,
    /// Absolute arrival time.
    pub arrival: SimTime,
    /// Final lifecycle phase.
    pub phase: WorkloadPhase,
    /// Whether it finished before its deadline.
    pub completed: bool,
    /// Whether it hit its deadline unfinished.
    pub expired: bool,
    /// Arrival → completion, when completed.
    pub completion_time: Option<SimDuration>,
    /// Spot interruptions this workload absorbed.
    pub interruptions: u64,
    /// Instance launches (initial + relaunches).
    pub launches: u32,
    /// Instance spend billed at this workload's terminations.
    pub billed: Usd,
    /// The last region it was placed in.
    pub final_region: Region,
}
