//! Seeded arrival-process load generation: traffic-shaped fleets.
//!
//! The paper's evaluation runs a handful of workflows arriving together;
//! fleet-scale traffic is what actually stresses the scheduler and the
//! Optimizer's hot paths. This module generates such traffic
//! deterministically: an [`ArrivalProcess`] (Poisson, diurnal-peak, or
//! burst) draws arrival offsets, a [`WorkloadMix`] draws heavy-tailed
//! workload sizes and kinds from the `bio-workloads` catalog, and a set of
//! [`TenantClass`]es assigns tenants and [`Priority`] classes — all from
//! labelled forks of one seed, so a generated [`FleetConfig`] replays
//! byte-identically for a given `(profile, seed, count)` triple.
//!
//! # Arrival math
//!
//! * **Poisson** — homogeneous rate λ: inter-arrival gaps are iid
//!   `Exp(λ)`, the classic memoryless arrival stream.
//! * **Diurnal peak** — a non-homogeneous Poisson process with rate
//!   `λ(t) = base · ((1+m)/2 + ((m−1)/2)·cos(2π(h(t)−peak)/24))`, which
//!   swings between `base` at the trough and `base·m` at `peak_hour`.
//!   Sampled by thinning: candidates are drawn at the peak rate `base·m`
//!   and accepted with probability `λ(t)/(base·m)`.
//! * **Burst** — burst *starts* form a Poisson process; each burst drops
//!   a geometrically-sized group of workloads inside a short `spread`
//!   window, modelling a queue flush or a course-deadline stampede.
//!
//! # Examples
//!
//! ```
//! use cloud_market::InstanceType;
//! use spotverse::loadgen::LoadProfile;
//!
//! let profile = LoadProfile::poisson(12.0);
//! let config = profile.generate(7, 50, InstanceType::M5Xlarge);
//! assert_eq!(config.workloads.len(), 50);
//! // Same seed, same profile: byte-identical fleet.
//! let again = profile.generate(7, 50, InstanceType::M5Xlarge);
//! assert_eq!(config.workloads.len(), again.workloads.len());
//! ```

use bio_workloads::{WorkloadKind, WorkloadSpec};
use cloud_market::InstanceType;
use sim_kernel::{SimDuration, SimRng};

use crate::fleet::{FleetConfig, FleetWorkload, Priority};

/// How arrival offsets are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a constant hourly rate.
    Poisson {
        /// Mean arrivals per hour (λ).
        rate_per_hour: f64,
    },
    /// Non-homogeneous Poisson arrivals following a 24-hour cosine curve.
    DiurnalPeak {
        /// Trough rate in arrivals per hour.
        base_rate_per_hour: f64,
        /// Peak-to-trough rate ratio (`m ≥ 1`); the peak rate is
        /// `base · m`.
        peak_multiplier: f64,
        /// Hour of day (0–24) at which the rate peaks.
        peak_hour: f64,
    },
    /// Clustered arrivals: Poisson burst starts, geometric burst sizes.
    Burst {
        /// Mean burst starts per hour.
        burst_rate_per_hour: f64,
        /// Mean workloads per burst (geometric; ≥ 1).
        mean_burst_size: f64,
        /// Window over which one burst's members land.
        spread: SimDuration,
    },
}

impl ArrivalProcess {
    /// Draws `count` arrival offsets from the process, ascending.
    ///
    /// Deterministic in `(self, rng stream)`: the schedule depends only on
    /// the parameters and the stream's seed lineage.
    fn sample(&self, rng: &mut SimRng, count: usize) -> Vec<SimDuration> {
        let mut out = Vec::with_capacity(count);
        match *self {
            ArrivalProcess::Poisson { rate_per_hour } => {
                let rate_per_sec = rate_per_hour / 3600.0;
                let mut t = 0.0f64;
                for _ in 0..count {
                    t += rng.exponential(rate_per_sec);
                    out.push(SimDuration::from_secs(t as u64));
                }
            }
            ArrivalProcess::DiurnalPeak {
                base_rate_per_hour,
                peak_multiplier,
                peak_hour,
            } => {
                let m = peak_multiplier.max(1.0);
                let peak_rate_per_sec = base_rate_per_hour * m / 3600.0;
                let mut t = 0.0f64;
                while out.len() < count {
                    // Thinning: candidates at the peak rate, accepted with
                    // probability λ(t)/λ_max ∈ [1/m, 1].
                    t += rng.exponential(peak_rate_per_sec);
                    let hour = (t / 3600.0) % 24.0;
                    let phase = (hour - peak_hour) * std::f64::consts::TAU / 24.0;
                    let factor = (1.0 + m) / 2.0 + (m - 1.0) / 2.0 * phase.cos();
                    if rng.chance(factor / m) {
                        out.push(SimDuration::from_secs(t as u64));
                    }
                }
            }
            ArrivalProcess::Burst {
                burst_rate_per_hour,
                mean_burst_size,
                spread,
            } => {
                let rate_per_sec = burst_rate_per_hour / 3600.0;
                // Geometric on {1, 2, ...} with the requested mean.
                let p = (1.0 / mean_burst_size.max(1.0)).clamp(f64::EPSILON, 1.0);
                let mut t = 0.0f64;
                while out.len() < count {
                    t += rng.exponential(rate_per_sec);
                    let size = 1 + (rng.uniform().max(f64::MIN_POSITIVE).ln()
                        / (1.0 - p).max(f64::MIN_POSITIVE).ln())
                        as usize;
                    for _ in 0..size.min(count - out.len()) {
                        let jitter = rng.uniform() * spread.as_secs() as f64;
                        out.push(SimDuration::from_secs((t + jitter) as u64));
                    }
                }
            }
        }
        // Bursts can interleave when the spread exceeds the inter-burst
        // gap; present the schedule ascending regardless of process.
        out.sort_unstable();
        out
    }
}

/// Heavy-tailed workload-size and kind mix, drawn from the
/// `bio-workloads` catalog.
///
/// Durations are log-normal — `median · exp(σZ)` clamped to
/// `[min, max]` — matching the skewed per-tool resource distributions
/// real Galaxy workloads exhibit (most jobs short, a fat tail of
/// multi-hour runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Relative draw weight per kind, in [`WorkloadKind::ALL`] order.
    pub kind_weights: [f64; 3],
    /// Median uninterrupted duration.
    pub median: SimDuration,
    /// Log-space spread (σ of the log-normal).
    pub sigma: f64,
    /// Duration floor.
    pub min: SimDuration,
    /// Duration ceiling.
    pub max: SimDuration,
}

impl WorkloadMix {
    /// The default catalog mix: mostly standard/general jobs with a
    /// genome-reconstruction middle and an NGS checkpointable tail,
    /// median 2 h, σ = 0.8 (≈ p95 of 7.5 h), clamped to 15 min – 24 h.
    pub fn galaxy_default() -> Self {
        WorkloadMix {
            kind_weights: [0.5, 0.3, 0.2],
            median: SimDuration::from_hours(2),
            sigma: 0.8,
            min: SimDuration::from_mins(15),
            max: SimDuration::from_hours(24),
        }
    }

    /// Draws one `(kind, duration)` pair.
    fn sample(&self, rng: &mut SimRng) -> (WorkloadKind, SimDuration) {
        let kind = WorkloadKind::ALL[weighted_pick(rng, &self.kind_weights)];
        let z = rng.standard_normal();
        let secs = self.median.as_secs() as f64 * (self.sigma * z).exp();
        let secs = (secs as u64).clamp(self.min.as_secs(), self.max.as_secs());
        (kind, SimDuration::from_secs(secs))
    }
}

/// One tenant population: a label, its priority class, and its share of
/// the arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Tenant label, stamped on generated workloads and trace events.
    pub name: String,
    /// The tier this tenant's workloads schedule at.
    pub priority: Priority,
    /// Relative share of arrivals.
    pub weight: f64,
}

impl TenantClass {
    /// Convenience constructor.
    pub fn new(name: &str, priority: Priority, weight: f64) -> Self {
        TenantClass { name: name.to_owned(), priority, weight }
    }
}

/// A named load profile: arrival process + workload mix + tenant classes.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Profile name (the CLI's `--loadgen` value).
    pub name: String,
    /// How arrivals are spaced.
    pub arrivals: ArrivalProcess,
    /// What arrives.
    pub mix: WorkloadMix,
    /// Who submits it. Empty = single anonymous tenant at the default
    /// priority (no tenant/priority fields in traces).
    pub tenants: Vec<TenantClass>,
}

/// The default three-tenant population: a latency-sensitive interactive
/// minority, a standard majority, and a best-effort batch tail.
fn default_tenants() -> Vec<TenantClass> {
    vec![
        TenantClass::new("clinical", Priority::Interactive, 1.0),
        TenantClass::new("core-lab", Priority::Standard, 3.0),
        TenantClass::new("cohort-batch", Priority::Batch, 2.0),
    ]
}

impl LoadProfile {
    /// Homogeneous Poisson arrivals at `rate_per_hour`.
    pub fn poisson(rate_per_hour: f64) -> Self {
        LoadProfile {
            name: "poisson".to_owned(),
            arrivals: ArrivalProcess::Poisson { rate_per_hour },
            mix: WorkloadMix::galaxy_default(),
            tenants: default_tenants(),
        }
    }

    /// Diurnal-peak arrivals: trough rate `rate_per_hour`, 4× peak at
    /// 14:00 (mid-afternoon analysis rush).
    pub fn diurnal(rate_per_hour: f64) -> Self {
        LoadProfile {
            name: "diurnal".to_owned(),
            arrivals: ArrivalProcess::DiurnalPeak {
                base_rate_per_hour: rate_per_hour,
                peak_multiplier: 4.0,
                peak_hour: 14.0,
            },
            mix: WorkloadMix::galaxy_default(),
            tenants: default_tenants(),
        }
    }

    /// Bursty arrivals: `rate_per_hour / 8` burst starts per hour with a
    /// mean of 8 workloads per burst landing inside 5 minutes, so the
    /// long-run rate matches `rate_per_hour`.
    pub fn burst(rate_per_hour: f64) -> Self {
        LoadProfile {
            name: "burst".to_owned(),
            arrivals: ArrivalProcess::Burst {
                burst_rate_per_hour: rate_per_hour / 8.0,
                mean_burst_size: 8.0,
                spread: SimDuration::from_mins(5),
            },
            mix: WorkloadMix::galaxy_default(),
            tenants: default_tenants(),
        }
    }

    /// Looks a profile up by name (`poisson` | `diurnal` | `burst`) at a
    /// given hourly rate. `None` for unknown names.
    pub fn named(name: &str, rate_per_hour: f64) -> Option<Self> {
        match name {
            "poisson" => Some(LoadProfile::poisson(rate_per_hour)),
            "diurnal" => Some(LoadProfile::diurnal(rate_per_hour)),
            "burst" => Some(LoadProfile::burst(rate_per_hour)),
            _ => None,
        }
    }

    /// The arrival schedule this profile draws for `(seed, count)`:
    /// `count` offsets from the fleet start, ascending. The same triple
    /// always yields the same schedule.
    pub fn arrival_schedule(&self, seed: u64, count: usize) -> Vec<SimDuration> {
        let mut rng = SimRng::seed_from_u64(seed).fork("loadgen").fork("arrivals");
        self.arrivals.sample(&mut rng, count)
    }

    /// Generates a deterministic fleet: `count` workloads with arrivals,
    /// kinds, durations, tenants, and priorities all drawn from labelled
    /// forks of `seed`. The returned config carries [`FleetConfig::new`]
    /// defaults; callers adjust deadlines, capacity, and tracing.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` (a fleet must be non-empty).
    pub fn generate(&self, seed: u64, count: usize, instance_type: InstanceType) -> FleetConfig {
        assert!(count > 0, "loadgen: empty fleet");
        let root = SimRng::seed_from_u64(seed).fork("loadgen");
        let arrivals = self.arrival_schedule(seed, count);
        let tenant_weights: Vec<f64> = self.tenants.iter().map(|t| t.weight).collect();
        let workloads = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let mut mix_rng = root.fork_indexed("mix", i as u64);
                let (kind, duration) = self.mix.sample(&mut mix_rng);
                let (tenant, priority) = if self.tenants.is_empty() {
                    (None, Priority::Standard)
                } else {
                    let mut tenant_rng = root.fork_indexed("tenant", i as u64);
                    let t = &self.tenants[weighted_pick(&mut tenant_rng, &tenant_weights)];
                    (Some(t.name.clone()), t.priority)
                };
                FleetWorkload {
                    spec: WorkloadSpec {
                        id: format!("g-{i:04}"),
                        kind,
                        duration,
                        shards: None,
                    },
                    arrival,
                    tenant,
                    priority,
                }
            })
            .collect();
        FleetConfig::new(seed, instance_type, workloads)
    }
}

/// Picks an index with probability proportional to its weight. Weights
/// must be non-negative with a positive sum.
fn weighted_pick(rng: &mut SimRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weighted_pick: degenerate weights");
    let mut x = rng.uniform() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_ascending_and_deterministic() {
        let p = LoadProfile::poisson(30.0);
        let a = p.arrival_schedule(11, 500);
        let b = p.arrival_schedule(11, 500);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 500);
        // Mean inter-arrival gap ≈ 2 minutes at 30/hour.
        let span = a.last().unwrap().as_secs() as f64;
        let mean_gap = span / 500.0;
        assert!((60.0..240.0).contains(&mean_gap), "mean gap {mean_gap}s");
    }

    #[test]
    fn different_seeds_differ() {
        let p = LoadProfile::poisson(30.0);
        assert_ne!(p.arrival_schedule(1, 100), p.arrival_schedule(2, 100));
    }

    #[test]
    fn diurnal_rate_peaks_at_peak_hour() {
        let p = LoadProfile::diurnal(20.0);
        let arrivals = p.arrival_schedule(5, 4000);
        // Bucket arrivals by hour of day; the peak-hour bucket must beat
        // the trough bucket decisively (4x multiplier, large sample).
        let mut by_hour = [0u32; 24];
        for a in &arrivals {
            by_hour[(a.as_secs() / 3600 % 24) as usize] += 1;
        }
        let peak = by_hour[14];
        let trough = by_hour[2];
        assert!(
            peak > trough * 2,
            "peak-hour arrivals {peak} not dominant over trough {trough}"
        );
    }

    #[test]
    fn burst_schedule_clusters() {
        let p = LoadProfile::burst(16.0);
        let arrivals = p.arrival_schedule(3, 400);
        assert_eq!(arrivals.len(), 400);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Bursty traffic: a majority of gaps are inside the 5-minute
        // spread window, while burst starts are ~30 minutes apart.
        let small_gaps = arrivals
            .windows(2)
            .filter(|w| w[1] - w[0] <= SimDuration::from_mins(5))
            .count();
        assert!(small_gaps * 2 > arrivals.len(), "only {small_gaps} clustered gaps");
    }

    #[test]
    fn generated_fleet_is_byte_deterministic() {
        for profile in [
            LoadProfile::poisson(24.0),
            LoadProfile::diurnal(24.0),
            LoadProfile::burst(24.0),
        ] {
            let a = profile.generate(42, 120, InstanceType::M5Xlarge);
            let b = profile.generate(42, 120, InstanceType::M5Xlarge);
            assert_eq!(a.workloads.len(), b.workloads.len());
            for (x, y) in a.workloads.iter().zip(&b.workloads) {
                assert_eq!(x.spec, y.spec);
                assert_eq!(x.arrival, y.arrival);
                assert_eq!(x.tenant, y.tenant);
                assert_eq!(x.priority, y.priority);
            }
        }
    }

    #[test]
    fn durations_are_clamped_and_heavy_tailed() {
        let p = LoadProfile::poisson(24.0);
        let config = p.generate(9, 600, InstanceType::M5Xlarge);
        let mix = WorkloadMix::galaxy_default();
        let durations: Vec<u64> =
            config.workloads.iter().map(|w| w.spec.duration.as_secs()).collect();
        assert!(durations.iter().all(|&d| d >= mix.min.as_secs() && d <= mix.max.as_secs()));
        // Skew: the mean exceeds the median for a heavy right tail.
        let mut sorted = durations.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = durations.iter().sum::<u64>() as f64 / durations.len() as f64;
        assert!(mean > median, "mean {mean} not above median {median}");
    }

    #[test]
    fn tenants_cover_all_priority_classes() {
        let p = LoadProfile::poisson(24.0);
        let config = p.generate(4, 300, InstanceType::M5Xlarge);
        let mut seen = std::collections::BTreeSet::new();
        for w in &config.workloads {
            assert!(w.tenant.is_some());
            seen.insert(w.priority);
        }
        assert_eq!(seen.len(), 3, "all three priority classes drawn");
    }

    #[test]
    fn empty_tenant_list_generates_single_tenant_defaults() {
        let mut p = LoadProfile::poisson(24.0);
        p.tenants.clear();
        let config = p.generate(4, 50, InstanceType::M5Xlarge);
        assert!(config.workloads.iter().all(|w| w.tenant.is_none()));
        assert!(config.workloads.iter().all(|w| w.priority == Priority::Standard));
    }

    #[test]
    fn named_lookup_round_trips() {
        for name in ["poisson", "diurnal", "burst"] {
            assert_eq!(LoadProfile::named(name, 10.0).unwrap().name, name);
        }
        assert!(LoadProfile::named("sawtooth", 10.0).is_none());
    }
}
