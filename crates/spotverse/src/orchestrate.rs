//! Distributed sweep orchestration on the simulated serverless substrate.
//!
//! [`run_matrix_orchestrated`] re-hosts [`crate::sweep::run_matrix`] as a
//! parent/child shard fan-out over `aws-stack` (ROADMAP item 3, paper §4:
//! the real SpotVerse control plane deploys on Lambda). The parent shards
//! the cell matrix and dispatches each shard as a function invocation over
//! the event bus; shard workers claim a **lease** in the KV store with a
//! conditional write, renew it by heartbeat, execute their cells, and
//! persist the result to the object store under a shard-id key.
//!
//! Robustness semantics (DESIGN.md §14):
//!
//! * **Leases** — a worker owns a shard only while its lease record is
//!   unexpired; claims and renewals are conditional writes, so exactly one
//!   worker wins a key and a fenced straggler can never clobber a
//!   successor's lease.
//! * **Idempotent completion** — results are keyed by shard id and the
//!   cell computation is deterministic, so a duplicate delivery or a
//!   straggler finishing late observes the existing result object and
//!   becomes a byte-identical no-op.
//! * **Re-drive** — a lease that expires (lost worker, straggler) or a
//!   dispatch that is never claimed is re-dispatched with capped
//!   exponential backoff plus deterministic hash jitter
//!   ([`RetryPolicy::backoff_jittered`]).
//! * **Dead-letter** — after [`OrchestratorConfig::max_attempts`] failed
//!   attempts the shard moves to a dead-letter record carrying its full
//!   attempt history; its cells degrade to structured errors instead of
//!   hanging the sweep.
//!
//! All of it runs single-threaded over a [`sim_kernel::EventQueue`], so a
//! given matrix + config is bit-reproducible, chaos included. Fault-free
//! runs produce outcomes byte-identical to `run_matrix` because shard
//! workers execute cells through the exact same code path.

use aws_stack::{
    AttrValue, BusEvent, EventBus, FunctionConfig, FunctionRuntime, Item, KvError, KvStore,
    ObjectBody, ObjectStore, RetryPolicy, Rule,
};
use chaos::{ChaosEngine, ChaosScenario};
use cloud_compute::BillingLedger;
use cloud_market::{Region, Usd};
use sim_kernel::{EventQueue, SimDuration, SimTime};

use crate::strategy::Strategy;
use crate::sweep::{run_cell, CellOutcome, MarketCache, SweepCell, SweepOutcome};
use crate::trace::{
    append_trace_jsonl, push_json_str, RunTrace, TraceConfig, TraceEvent, Tracer,
};

/// KV table holding one lease record per shard.
pub const LEASE_TABLE: &str = "sweep-leases";
/// KV table holding dead-letter records.
pub const DEADLETTER_TABLE: &str = "sweep-dead-letters";
/// Object-store bucket holding per-shard result payloads.
pub const RESULT_BUCKET: &str = "sweep-results";
/// The registered shard-executor function.
pub const EXECUTOR_FUNCTION: &str = "sweep-shard-executor";
/// Event source for shard dispatches.
const DISPATCH_SOURCE: &str = "spotverse.sweep";
/// Detail type for shard dispatches.
const DISPATCH_DETAIL_TYPE: &str = "Sweep Shard Dispatch";

/// Tuning for the sweep orchestrator.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Seed for backoff jitter and the chaos engine.
    pub seed: u64,
    /// Cells per shard (≥ 1).
    pub shard_size: usize,
    /// How long a claimed lease lives without renewal.
    pub lease_duration: SimDuration,
    /// Interval between a worker's lease renewals.
    pub heartbeat_interval: SimDuration,
    /// How long the parent waits for a dispatched shard to claim its
    /// lease before declaring the dispatch lost.
    pub claim_timeout: SimDuration,
    /// Parent supervision cadence (lease scans).
    pub supervise_interval: SimDuration,
    /// Event-bus delivery latency from dispatch to worker start.
    pub dispatch_latency: SimDuration,
    /// Modelled sim-time duration of one shard execution.
    pub shard_exec_duration: SimDuration,
    /// Attempts before a shard is dead-lettered (≥ 1).
    pub max_attempts: u32,
    /// Backoff between re-drives; `jitter` spreads simultaneous re-drives.
    pub redrive_backoff: RetryPolicy,
    /// Home region for the orchestration services.
    pub region: Region,
    /// Chaos injected into the *orchestration* services (not the cells).
    pub chaos: Option<ChaosScenario>,
    /// Orchestration-event trace collection.
    pub trace: TraceConfig,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            seed: 2024,
            shard_size: 1,
            lease_duration: SimDuration::from_mins(10),
            heartbeat_interval: SimDuration::from_mins(3),
            claim_timeout: SimDuration::from_mins(3),
            supervise_interval: SimDuration::from_secs(45),
            dispatch_latency: SimDuration::from_secs(5),
            shard_exec_duration: SimDuration::from_mins(8),
            max_attempts: 4,
            redrive_backoff: RetryPolicy {
                max_attempts: 1,
                initial_backoff: SimDuration::from_secs(60),
                backoff_rate: 2.0,
                max_delay: SimDuration::from_mins(15),
                jitter: SimDuration::from_secs(45),
            },
            region: Region::UsEast1,
            chaos: None,
            trace: TraceConfig::default(),
        }
    }
}

/// One failed attempt in a shard's history.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// When the attempt was dispatched.
    pub dispatched_at: SimTime,
    /// Why it was declared failed.
    pub failure: String,
}

/// A shard that exhausted its attempts, with its full attempt history.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The shard index.
    pub shard: usize,
    /// Labels of the cells the shard carried.
    pub labels: Vec<String>,
    /// Every failed attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Whether the dead-letter KV record was durably written (the write
    /// itself can be throttled; the in-memory record is authoritative).
    pub recorded: bool,
}

/// Resilience telemetry for one orchestrated sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestrationStats {
    /// Shards the matrix was split into.
    pub shards: usize,
    /// Dispatches published to the event bus (first tries + re-drives).
    pub dispatches: u64,
    /// Re-drives scheduled after failed attempts.
    pub redrives: u64,
    /// Lease expiries observed by the parent.
    pub lease_expiries: u64,
    /// Worker executions that exited as idempotent duplicates.
    pub duplicate_executions: u64,
    /// Shards that completed (persisted a result).
    pub completed_shards: usize,
    /// Shards that were dead-lettered.
    pub dead_lettered_shards: usize,
    /// Event-bus deliveries dropped by chaos.
    pub bus_lost: u64,
    /// Event-bus deliveries duplicated by chaos.
    pub bus_duplicated: u64,
    /// Sim time at which the last shard reached a terminal state.
    pub finished_at: SimTime,
    /// Total billed cost of the orchestration services.
    pub service_cost: Usd,
}

/// The result of an orchestrated sweep: per-cell outcomes in matrix
/// order (dead-lettered cells carry structured errors), the dead-letter
/// records, telemetry, and the orchestration-event trace.
#[derive(Debug, Clone)]
pub struct OrchestratedSweepReport {
    /// One outcome per input cell, in input order.
    pub outcomes: Vec<CellOutcome>,
    /// Shards that exhausted their attempts.
    pub dead_letters: Vec<DeadLetter>,
    /// Orchestration telemetry.
    pub stats: OrchestrationStats,
    /// Orchestration events (shard dispatch/lease/redrive/dead-letter),
    /// when tracing is enabled. Separate from the per-cell run traces,
    /// which live inside each [`CellOutcome`]'s report.
    pub trace: Option<RunTrace>,
}

/// Parent-loop events, delivered in time order (FIFO within a tick).
#[derive(Debug)]
enum OrchEvent {
    /// Publish shard `shard`'s dispatch (attempt `attempt`) on the bus.
    Dispatch { shard: usize, attempt: u32 },
    /// A delivered dispatch starts a worker execution.
    WorkerStart { shard: usize, attempt: u32 },
    /// A worker renews its lease.
    Heartbeat { exec: u64 },
    /// A worker finishes executing and persists its result.
    WorkerFinish { exec: u64 },
    /// The parent scans leases for stragglers and lost dispatches.
    Supervise,
}

/// Where a shard is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
enum ShardPhase {
    /// A re-drive is scheduled; nothing in flight.
    Waiting,
    /// Dispatched and not yet resolved.
    InFlight { attempt: u32, dispatched_at: SimTime },
    /// Result persisted and promoted.
    Completed,
    /// Attempts exhausted.
    DeadLettered,
}

struct Shard {
    cells: std::ops::Range<usize>,
    phase: ShardPhase,
    history: Vec<AttemptRecord>,
    outcomes: Option<Vec<CellOutcome>>,
    recorded: bool,
}

/// One live worker execution (a claimed lease being worked).
struct Execution {
    shard: usize,
    attempt: u32,
    owner: String,
    finish_at: SimTime,
    /// Set when a lease renewal is rejected: the lease was taken over, so
    /// this execution must not persist a result.
    fenced: bool,
}

/// Runs `cells` through the distributed orchestrator. Fault-free (no
/// `chaos` in the config) the returned outcomes are byte-identical to
/// [`crate::sweep::run_matrix`] over the same cells and cache.
pub fn run_matrix_orchestrated<F>(
    cells: &[SweepCell],
    config: &OrchestratorConfig,
    cache: &MarketCache,
    strategy_for: F,
) -> OrchestratedSweepReport
where
    F: Fn(&SweepCell) -> Box<dyn Strategy> + Sync,
{
    Orchestrator::new(cells, config).run(cache, &strategy_for)
}

struct Orchestrator<'a> {
    cells: &'a [SweepCell],
    config: &'a OrchestratorConfig,
    kv: KvStore,
    store: ObjectStore,
    bus: EventBus,
    functions: FunctionRuntime,
    ledger: BillingLedger,
    queue: EventQueue<OrchEvent>,
    tracer: Tracer,
    shards: Vec<Shard>,
    executions: std::collections::BTreeMap<u64, Execution>,
    next_exec: u64,
    dispatches: u64,
    redrives: u64,
    lease_expiries: u64,
    duplicate_executions: u64,
    finished_at: SimTime,
}

impl<'a> Orchestrator<'a> {
    fn new(cells: &'a [SweepCell], config: &'a OrchestratorConfig) -> Self {
        let mut kv = KvStore::new();
        let mut store = ObjectStore::new();
        let mut bus = EventBus::new();
        let mut functions = FunctionRuntime::new();
        kv.create_table(LEASE_TABLE, config.region).expect("fresh lease table");
        kv.create_table(DEADLETTER_TABLE, config.region).expect("fresh dead-letter table");
        store.create_bucket(RESULT_BUCKET, config.region).expect("fresh result bucket");
        functions.register(
            EXECUTOR_FUNCTION,
            config.region,
            FunctionConfig {
                exec_duration: config.shard_exec_duration,
                timeout: config.shard_exec_duration.max(SimDuration::from_mins(15)),
                ..FunctionConfig::default()
            },
        );
        bus.put_rule(Rule::new(
            "on-shard-dispatch",
            DISPATCH_SOURCE,
            Some(DISPATCH_DETAIL_TYPE.into()),
            EXECUTOR_FUNCTION,
        ))
        .expect("fresh bus");
        if let Some(scenario) = &config.chaos {
            let engine = ChaosEngine::new(scenario, config.seed, SimTime::ZERO);
            kv.set_fault_injector(engine.service_injector("orch-kv"));
            store.set_fault_injector(engine.service_injector("orch-s3"));
            functions.set_fault_injector(engine.service_injector("orch-fn"));
            bus.set_fault_injector(engine.service_injector("orch-bus"));
        }
        let shard_size = config.shard_size.max(1);
        let shards: Vec<Shard> = (0..cells.len())
            .step_by(shard_size)
            .map(|start| Shard {
                cells: start..(start + shard_size).min(cells.len()),
                phase: ShardPhase::Waiting,
                history: Vec::new(),
                outcomes: None,
                recorded: false,
            })
            .collect();
        Orchestrator {
            cells,
            config,
            kv,
            store,
            bus,
            functions,
            ledger: BillingLedger::new(),
            queue: EventQueue::new(),
            tracer: Tracer::new(&config.trace),
            shards,
            executions: std::collections::BTreeMap::new(),
            next_exec: 0,
            dispatches: 0,
            redrives: 0,
            lease_expiries: 0,
            duplicate_executions: 0,
            finished_at: SimTime::ZERO,
        }
    }

    fn run<F>(mut self, cache: &MarketCache, strategy_for: &F) -> OrchestratedSweepReport
    where
        F: Fn(&SweepCell) -> Box<dyn Strategy> + Sync,
    {
        for shard in 0..self.shards.len() {
            self.queue.schedule(SimTime::ZERO, OrchEvent::Dispatch { shard, attempt: 1 });
        }
        self.queue
            .schedule(SimTime::ZERO + self.config.supervise_interval, OrchEvent::Supervise);
        while let Some((now, event)) = self.queue.pop() {
            match event {
                OrchEvent::Dispatch { shard, attempt } => self.dispatch(shard, attempt, now),
                OrchEvent::WorkerStart { shard, attempt } => self.worker_start(shard, attempt, now),
                OrchEvent::Heartbeat { exec } => self.heartbeat(exec, now),
                OrchEvent::WorkerFinish { exec } => self.worker_finish(exec, now, cache, strategy_for),
                OrchEvent::Supervise => self.supervise(now),
            }
            if self.all_terminal() {
                self.finished_at = now;
                break;
            }
        }
        self.assemble()
    }

    fn all_terminal(&self) -> bool {
        self.shards
            .iter()
            .all(|s| matches!(s.phase, ShardPhase::Completed | ShardPhase::DeadLettered))
    }

    fn terminal(&self, shard: usize) -> bool {
        matches!(
            self.shards[shard].phase,
            ShardPhase::Completed | ShardPhase::DeadLettered
        )
    }

    fn lease_key(shard: usize) -> String {
        format!("shard-{shard}")
    }

    /// Publishes a shard dispatch on the bus; each delivered copy starts a
    /// worker after the delivery latency. A lost delivery starts nothing —
    /// supervision catches it via the claim timeout.
    fn dispatch(&mut self, shard: usize, attempt: u32, now: SimTime) {
        if self.terminal(shard) {
            return; // a straggler completed the shard during backoff
        }
        self.dispatches += 1;
        self.shards[shard].phase = ShardPhase::InFlight { attempt, dispatched_at: now };
        let cells = self.shards[shard].cells.len();
        self.tracer
            .record(now, TraceEvent::ShardDispatched { shard, attempt, cells });
        let targets = self.bus.publish(BusEvent::new(
            DISPATCH_SOURCE,
            DISPATCH_DETAIL_TYPE,
            format!("{shard}/a{attempt}"),
            now,
        ));
        for _ in targets {
            self.queue.schedule(
                now + self.config.dispatch_latency,
                OrchEvent::WorkerStart { shard, attempt },
            );
        }
    }

    /// A delivered dispatch: bill the invocation, pre-check idempotency,
    /// claim the lease, and schedule heartbeats + the finish.
    fn worker_start(&mut self, shard: usize, attempt: u32, now: SimTime) {
        // The invocation itself can be throttled or lost by chaos; the
        // attempt dies unclaimed and supervision re-drives it.
        let invoked = self.functions.invoke(
            EXECUTOR_FUNCTION,
            now,
            RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
            &mut self.ledger,
            |_| Ok(()),
        );
        if invoked.is_err() {
            return;
        }
        // Idempotency pre-check: a result for this shard already exists —
        // this execution is a duplicate delivery or a late re-drive.
        if self.store.get_metadata(RESULT_BUCKET, &Self::lease_key(shard)).is_ok() {
            self.duplicate_executions += 1;
            self.tracer
                .record(now, TraceEvent::ShardCompleted { shard, attempt, duplicate: true });
            return;
        }
        let exec = self.next_exec;
        let owner = format!("exec-{exec}/s{shard}a{attempt}");
        let expires = now + self.config.lease_duration;
        let claim = self.kv.conditional_put(
            LEASE_TABLE,
            &Self::lease_key(shard),
            lease_item(&owner, attempt, expires, "held"),
            now,
            &mut self.ledger,
            |cur| match cur {
                None => true,
                Some(item) => {
                    lease_state(item) != "done" && lease_expires(item) <= now
                }
            },
        );
        match claim {
            Ok(()) => {}
            // Another execution holds an unexpired lease, or the write
            // was throttled/lost: this worker exits without the shard.
            Err(_) => return,
        }
        self.next_exec += 1;
        let finish_at = now + self.config.shard_exec_duration;
        self.executions.insert(
            exec,
            Execution { shard, attempt, owner, finish_at, fenced: false },
        );
        let first_heartbeat = now + self.config.heartbeat_interval;
        if first_heartbeat < finish_at {
            self.queue.schedule(first_heartbeat, OrchEvent::Heartbeat { exec });
        }
        self.queue.schedule(finish_at, OrchEvent::WorkerFinish { exec });
    }

    /// Conditional lease renewal. Rejection means the lease was taken
    /// over (the parent re-drove the shard) — the execution is fenced and
    /// must not persist a result. A throttled renewal is retried at the
    /// next heartbeat; the lease may expire in the meantime, which is the
    /// straggler path.
    fn heartbeat(&mut self, exec: u64, now: SimTime) {
        let Some(e) = self.executions.get(&exec) else { return };
        if e.fenced {
            return;
        }
        let (shard, attempt, owner, finish_at) = (e.shard, e.attempt, e.owner.clone(), e.finish_at);
        let renewed = self.kv.conditional_put(
            LEASE_TABLE,
            &Self::lease_key(shard),
            lease_item(&owner, attempt, now + self.config.lease_duration, "held"),
            now,
            &mut self.ledger,
            |cur| cur.is_some_and(|item| lease_owner(item) == owner),
        );
        if let Err(KvError::ConditionFailed { .. }) = renewed {
            if let Some(e) = self.executions.get_mut(&exec) {
                e.fenced = true;
            }
            return;
        }
        let next = now + self.config.heartbeat_interval;
        if next < finish_at {
            self.queue.schedule(next, OrchEvent::Heartbeat { exec });
        }
    }

    /// The worker finishes: re-check idempotency, execute the cells
    /// through the same path as `run_matrix`, persist the payload, and
    /// promote the outcomes. A failed persist leaves the lease to expire
    /// so supervision re-drives the shard.
    fn worker_finish<F>(&mut self, exec: u64, now: SimTime, cache: &MarketCache, strategy_for: &F)
    where
        F: Fn(&SweepCell) -> Box<dyn Strategy> + Sync,
    {
        let Some(e) = self.executions.remove(&exec) else { return };
        if e.fenced {
            return;
        }
        let (shard, attempt, owner) = (e.shard, e.attempt, e.owner);
        if self.store.get_metadata(RESULT_BUCKET, &Self::lease_key(shard)).is_ok() {
            // A successor already persisted this shard while we ran: the
            // deterministic payload would be byte-identical, so this is
            // the idempotent no-op the result keying buys us.
            self.duplicate_executions += 1;
            self.tracer
                .record(now, TraceEvent::ShardCompleted { shard, attempt, duplicate: true });
            return;
        }
        let outcomes: Vec<CellOutcome> = self.shards[shard]
            .cells
            .clone()
            .map(|i| run_cell(&self.cells[i], cache, strategy_for))
            .collect();
        let payload = shard_payload(&outcomes);
        let persisted = self.store.put_object(
            RESULT_BUCKET,
            Self::lease_key(shard),
            ObjectBody::from_text(payload),
            self.config.region,
            now,
            &mut self.ledger,
        );
        if persisted.is_err() {
            return; // lease expires → supervision re-drives
        }
        // Best-effort lease release; failure just lets it expire idle.
        let _ = self.kv.conditional_put(
            LEASE_TABLE,
            &Self::lease_key(shard),
            lease_item(&owner, attempt, now + self.config.lease_duration, "done"),
            now,
            &mut self.ledger,
            |cur| cur.is_some_and(|item| lease_owner(item) == owner),
        );
        self.tracer
            .record(now, TraceEvent::ShardCompleted { shard, attempt, duplicate: false });
        if !self.terminal(shard) {
            self.shards[shard].outcomes = Some(outcomes);
            self.shards[shard].phase = ShardPhase::Completed;
        }
        // If the shard was already dead-lettered, the parent's verdict
        // stands: the persisted result is ignored by the report.
    }

    /// The parent's lease scan: detects expired leases (stragglers, lost
    /// workers) and dispatches that never claimed, then re-drives or
    /// dead-letters the shard.
    fn supervise(&mut self, now: SimTime) {
        for shard in 0..self.shards.len() {
            let ShardPhase::InFlight { attempt, dispatched_at } = self.shards[shard].phase else {
                continue;
            };
            let lease = match self.kv.get_item(
                LEASE_TABLE,
                &Self::lease_key(shard),
                now,
                &mut self.ledger,
            ) {
                Ok(lease) => lease,
                Err(_) => continue, // scan throttled; try next tick
            };
            match lease {
                Some(item) if lease_state(&item) == "done" => {}
                Some(item) => {
                    let holder_attempt = lease_attempt(&item);
                    if lease_expires(&item) <= now
                        && (holder_attempt == attempt
                            || now >= dispatched_at + self.config.claim_timeout)
                    {
                        self.lease_expiries += 1;
                        self.tracer.record(
                            now,
                            TraceEvent::LeaseExpired { shard, attempt: holder_attempt },
                        );
                        self.fail_attempt(shard, attempt, dispatched_at, now, "lease expired");
                    }
                    // An unexpired lease (current attempt or a live
                    // straggler) is healthy: it will complete or expire.
                }
                None => {
                    if now >= dispatched_at + self.config.claim_timeout {
                        self.fail_attempt(
                            shard,
                            attempt,
                            dispatched_at,
                            now,
                            "dispatch lost: no lease claimed within the claim timeout",
                        );
                    }
                }
            }
        }
        if !self.all_terminal() {
            self.queue
                .schedule(now + self.config.supervise_interval, OrchEvent::Supervise);
        }
    }

    /// Records a failed attempt, then re-drives with capped + jittered
    /// backoff or dead-letters the shard once attempts are exhausted.
    fn fail_attempt(
        &mut self,
        shard: usize,
        attempt: u32,
        dispatched_at: SimTime,
        now: SimTime,
        reason: &str,
    ) {
        self.shards[shard].history.push(AttemptRecord {
            attempt,
            dispatched_at,
            failure: reason.to_owned(),
        });
        if attempt < self.config.max_attempts {
            let backoff = self.config.redrive_backoff.backoff_jittered(
                attempt,
                self.config.seed,
                &Self::lease_key(shard),
            );
            self.redrives += 1;
            self.tracer.record(
                now,
                TraceEvent::ShardRedriven {
                    shard,
                    attempt: attempt + 1,
                    backoff_s: backoff.as_secs(),
                },
            );
            self.shards[shard].phase = ShardPhase::Waiting;
            self.queue
                .schedule(now + backoff, OrchEvent::Dispatch { shard, attempt: attempt + 1 });
        } else {
            self.shards[shard].phase = ShardPhase::DeadLettered;
            self.tracer
                .record(now, TraceEvent::ShardDeadLettered { shard, attempts: attempt });
            let item = dead_letter_item(shard, &self.shards[shard].history);
            self.shards[shard].recorded = self
                .kv
                .put_item(DEADLETTER_TABLE, Self::lease_key(shard), item, now, &mut self.ledger)
                .is_ok();
        }
    }

    fn assemble(mut self) -> OrchestratedSweepReport {
        let mut outcomes = Vec::with_capacity(self.cells.len());
        let mut dead_letters = Vec::new();
        let mut completed_shards = 0;
        for (index, shard) in self.shards.iter_mut().enumerate() {
            match shard.phase {
                ShardPhase::Completed => {
                    completed_shards += 1;
                    outcomes.extend(shard.outcomes.take().expect("completed shard has outcomes"));
                }
                ShardPhase::DeadLettered => {
                    let last = shard
                        .history
                        .last()
                        .map_or("unknown", |a| a.failure.as_str());
                    let reason = format!(
                        "shard {index} dead-lettered after {} attempts: {last}",
                        shard.history.len()
                    );
                    for i in shard.cells.clone() {
                        outcomes.push(SweepOutcome {
                            label: self.cells[i].label.clone(),
                            strategy: self.cells[i].strategy.clone(),
                            retries: 0,
                            result: Err(reason.clone()),
                        });
                    }
                    dead_letters.push(DeadLetter {
                        shard: index,
                        labels: shard.cells.clone().map(|i| self.cells[i].label.clone()).collect(),
                        attempts: std::mem::take(&mut shard.history),
                        recorded: shard.recorded,
                    });
                }
                ShardPhase::Waiting | ShardPhase::InFlight { .. } => {
                    unreachable!("orchestrator loop exited with shard {index} unresolved")
                }
            }
        }
        let stats = OrchestrationStats {
            shards: self.shards.len(),
            dispatches: self.dispatches,
            redrives: self.redrives,
            lease_expiries: self.lease_expiries,
            duplicate_executions: self.duplicate_executions,
            completed_shards,
            dead_lettered_shards: dead_letters.len(),
            bus_lost: self.bus.lost_count(),
            bus_duplicated: self.bus.duplicated_count(),
            finished_at: self.finished_at,
            service_cost: self.ledger.total(),
        };
        OrchestratedSweepReport {
            outcomes,
            dead_letters,
            stats,
            trace: self.tracer.finish(SimTime::ZERO),
        }
    }
}

fn lease_item(owner: &str, attempt: u32, expires: SimTime, state: &str) -> Item {
    let mut item = Item::new();
    item.insert("owner".into(), AttrValue::S(owner.to_owned()));
    item.insert("attempt".into(), AttrValue::N(f64::from(attempt)));
    item.insert("expires".into(), AttrValue::N(expires.as_secs() as f64));
    item.insert("state".into(), AttrValue::S(state.to_owned()));
    item
}

fn lease_owner(item: &Item) -> &str {
    item.get("owner").and_then(AttrValue::as_str).unwrap_or("")
}

fn lease_state(item: &Item) -> &str {
    item.get("state").and_then(AttrValue::as_str).unwrap_or("")
}

fn lease_attempt(item: &Item) -> u32 {
    item.get("attempt").and_then(AttrValue::as_number).unwrap_or(0.0) as u32
}

fn lease_expires(item: &Item) -> SimTime {
    SimTime::from_secs(item.get("expires").and_then(AttrValue::as_number).unwrap_or(0.0) as u64)
}

fn dead_letter_item(shard: usize, history: &[AttemptRecord]) -> Item {
    let mut item = Item::new();
    item.insert("shard".into(), AttrValue::N(shard as f64));
    item.insert("attempts".into(), AttrValue::N(history.len() as f64));
    item.insert(
        "history".into(),
        AttrValue::L(
            history
                .iter()
                .map(|a| {
                    AttrValue::S(format!(
                        "a{}@{}s: {}",
                        a.attempt,
                        a.dispatched_at.as_secs(),
                        a.failure
                    ))
                })
                .collect(),
        ),
    );
    item
}

/// The durable result payload for one shard: a canonical JSON summary
/// line per cell, then each cell's trace as JSONL. Pure function of the
/// cell outcomes, so any two executions of the same shard produce
/// byte-identical payloads.
fn shard_payload(outcomes: &[CellOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str("{\"label\":");
        push_json_str(&mut out, &o.label);
        out.push_str(",\"strategy\":");
        push_json_str(&mut out, &o.strategy);
        use std::fmt::Write;
        let _ = write!(out, ",\"retries\":{}", o.retries);
        match &o.result {
            Ok(report) => {
                let _ = write!(
                    out,
                    ",\"ok\":true,\"completed\":{},\"workloads\":{},\"makespan_s\":{},\
                     \"interruptions\":{},\"cost\":{:.6}",
                    report.completed,
                    report.workloads,
                    report.makespan.as_secs(),
                    report.interruptions,
                    report.cost.total.amount(),
                );
            }
            Err(e) => {
                out.push_str(",\"ok\":false,\"error\":");
                push_json_str(&mut out, e);
            }
        }
        out.push_str("}\n");
    }
    for o in outcomes {
        if let Ok(report) = &o.result {
            if let Some(trace) = &report.trace {
                append_trace_jsonl(&mut out, Some(&o.label), trace);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_matrix;
    use crate::{ExperimentConfig, SpotVerseConfig, SpotVerseStrategy};
    use bio_workloads::{paper_fleet, WorkloadKind};
    use cloud_market::InstanceType;
    use sim_kernel::SimRng;

    fn small_cells(n: usize) -> Vec<SweepCell> {
        (0..n)
            .map(|i| {
                let seed = 2024 + i as u64;
                let rng = SimRng::seed_from_u64(seed);
                let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 2, &rng);
                let config = ExperimentConfig::new(seed, InstanceType::M5Xlarge, fleet);
                SweepCell::new(format!("cell-{i}"), "spotverse", config)
            })
            .collect()
    }

    fn strategy_for(_cell: &SweepCell) -> Box<dyn Strategy> {
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        )))
    }

    #[test]
    fn fault_free_orchestration_matches_run_matrix() {
        let cells = small_cells(3);
        let cache = MarketCache::new();
        let inprocess = run_matrix(&cells, 1, &cache, strategy_for);
        let config = OrchestratorConfig::default();
        let report = run_matrix_orchestrated(&cells, &config, &cache, strategy_for);
        assert_eq!(report.outcomes, inprocess);
        assert!(report.dead_letters.is_empty());
        assert_eq!(report.stats.completed_shards, 3);
        assert_eq!(report.stats.dispatches, 3);
        assert_eq!(report.stats.redrives, 0);
        assert_eq!(report.stats.duplicate_executions, 0);
        assert!(report.stats.service_cost > Usd::ZERO);
    }

    #[test]
    fn shard_size_groups_cells_without_changing_outcomes() {
        let cells = small_cells(3);
        let cache = MarketCache::new();
        let config = OrchestratorConfig { shard_size: 2, ..OrchestratorConfig::default() };
        let report = run_matrix_orchestrated(&cells, &config, &cache, strategy_for);
        assert_eq!(report.stats.shards, 2);
        assert_eq!(report.outcomes, run_matrix(&cells, 1, &cache, strategy_for));
    }

    #[test]
    fn shard_payload_is_deterministic_and_jsonl() {
        let cells = small_cells(1);
        let cache = MarketCache::new();
        let outcomes = run_matrix(&cells, 1, &cache, strategy_for);
        let a = shard_payload(&outcomes);
        let b = shard_payload(&run_matrix(&cells, 1, &cache, strategy_for));
        assert_eq!(a, b, "same cells, byte-identical payload");
        assert!(a.lines().next().unwrap().starts_with("{\"label\":\"cell-0\""));
    }

    #[test]
    fn orchestration_trace_records_dispatches() {
        let cells = small_cells(2);
        let cache = MarketCache::new();
        let config = OrchestratorConfig {
            trace: TraceConfig { enabled: true, capacity: 256 },
            ..OrchestratorConfig::default()
        };
        let report = run_matrix_orchestrated(&cells, &config, &cache, strategy_for);
        let trace = report.trace.expect("tracing enabled");
        let dispatched = trace
            .events
            .iter()
            .filter(|r| r.event.label() == "shard_dispatched")
            .count();
        assert_eq!(dispatched, 2);
        assert!(trace.events.iter().any(|r| r.event.label() == "shard_completed"));
    }
}
