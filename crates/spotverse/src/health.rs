//! The region-health control plane: deterministic per-region circuit
//! breakers and the freshness/resilience telemetry they feed.
//!
//! The paper's Algorithm 1 assumes every region accepts launches and the
//! Monitor's feeds are always fresh. Under injected faults neither holds,
//! so the Controller keeps a [`RegionHealth`] ledger: chaos-attributed
//! launch rejections and interruptions *strike* a region's breaker, and
//! enough unhealed strikes trip it `Closed → Open`. An open breaker
//! quarantines the region — the Optimizer excludes it from Algorithm 1's
//! selection — for a seeded, escalating window, after which the breaker
//! relaxes to `HalfOpen`: the region is offered to the Optimizer again
//! and the next launch there is a *probe*. A fulfilled probe closes the
//! breaker; a rejected probe re-trips it with a longer quarantine.
//!
//! Determinism rules (the same discipline as
//! [`BackoffPolicy`](crate::resilience::BackoffPolicy)):
//!
//! * strikes are only recorded for **chaos-attributed** failures, so a
//!   fault-free run never creates a breaker entry — the ledger stays
//!   structurally empty and every consult is a no-op;
//! * quarantine jitter is a pure hash over `(seed, region, trip)`, never
//!   an RNG stream, so consulting or tripping a breaker consumes no
//!   randomness and leaves every other stream untouched;
//! * state transitions are lazy functions of the queried instant, so two
//!   runs asking the same questions at the same times get the same
//!   answers.

use std::collections::BTreeMap;

use cloud_market::Region;
use sim_kernel::{SimDuration, SimTime};

/// Where a region's breaker stands at a queried instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: launches flow normally.
    Closed,
    /// Quarantined: the Optimizer must not select the region.
    Open,
    /// Quarantine expired: the region is offered again and the next
    /// launch outcome there decides (probe).
    HalfOpen,
}

/// A breaker state change caused by one recorded observation — returned
/// by the `record_*` methods so callers (the trace layer) can log it
/// without re-deriving breaker internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// The region whose breaker moved.
    pub region: Region,
    /// State before the observation.
    pub from: BreakerState,
    /// State after the observation.
    pub to: BreakerState,
}

/// Tuning knobs for the per-region breakers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Unhealed strikes that trip a closed breaker.
    pub strike_threshold: u32,
    /// Quarantine after the first trip; doubles per subsequent trip.
    pub base_quarantine: SimDuration,
    /// Ceiling on the doubling.
    pub max_quarantine: SimDuration,
    /// Upper bound of the hash-derived jitter added to each quarantine
    /// (decorrelates same-instant trips across regions).
    pub jitter: SimDuration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            strike_threshold: 2,
            base_quarantine: SimDuration::from_hours(1),
            max_quarantine: SimDuration::from_hours(8),
            jitter: SimDuration::from_mins(10),
        }
    }
}

impl BreakerPolicy {
    /// The quarantine for trip number `trip` (1-based): exponential in
    /// the trip count, capped, plus seeded jitter.
    fn quarantine(&self, seed: u64, region: Region, trip: u32) -> SimDuration {
        let base = self.base_quarantine.as_secs();
        let doubled = base.saturating_mul(1u64.checked_shl(trip.saturating_sub(1)).unwrap_or(u64::MAX));
        let capped = doubled.min(self.max_quarantine.as_secs());
        SimDuration::from_secs(capped + jitter_secs(seed, region, trip, self.jitter))
    }
}

/// A deterministic draw in `[0, jitter]` seconds from a keyed hash —
/// FNV-1a over `(seed, region, trip)` finished with SplitMix64, matching
/// the chaos engine's pure-draw style. Never consumes RNG state.
fn jitter_secs(seed: u64, region: Region, trip: u32, jitter: SimDuration) -> u64 {
    let max = jitter.as_secs();
    if max == 0 {
        return 0;
    }
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for chunk in [seed, u64::from(trip)] {
        for byte in chunk.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    for byte in region.name().bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    z % (max + 1)
}

/// One region's breaker record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RegionBreaker {
    state: BreakerState,
    strikes: u32,
    trips: u32,
    reopen_at: SimTime,
}

impl RegionBreaker {
    fn new() -> Self {
        RegionBreaker {
            state: BreakerState::Closed,
            strikes: 0,
            trips: 0,
            reopen_at: SimTime::ZERO,
        }
    }

    /// The state as observed at `at` (Open relaxes to HalfOpen once the
    /// quarantine has elapsed).
    fn state_at(&self, at: SimTime) -> BreakerState {
        match self.state {
            BreakerState::Open if at >= self.reopen_at => BreakerState::HalfOpen,
            s => s,
        }
    }
}

/// The Controller's per-region breaker ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionHealth {
    policy: BreakerPolicy,
    seed: u64,
    breakers: BTreeMap<Region, RegionBreaker>,
    trips: u64,
    probes: u64,
    probe_failures: u64,
}

impl RegionHealth {
    /// An empty ledger under `policy`, with quarantine jitter keyed by
    /// `seed`.
    pub fn new(policy: BreakerPolicy, seed: u64) -> Self {
        RegionHealth {
            policy,
            seed,
            breakers: BTreeMap::new(),
            trips: 0,
            probes: 0,
            probe_failures: 0,
        }
    }

    /// Whether the ledger has never recorded a strike — the invariant
    /// state of every fault-free run.
    pub fn is_idle(&self) -> bool {
        self.breakers.is_empty()
    }

    /// Total `Closed → Open` transitions (re-trips included).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open probe outcomes observed (successes + failures).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Half-open probes that were rejected (each re-trips the breaker).
    pub fn probe_failures(&self) -> u64 {
        self.probe_failures
    }

    /// The breaker state for `region` at `at`. Unknown regions are
    /// `Closed`.
    pub fn state(&self, region: Region, at: SimTime) -> BreakerState {
        self.breakers
            .get(&region)
            .map_or(BreakerState::Closed, |b| b.state_at(at))
    }

    /// Whether `region` is quarantined (breaker `Open`) at `at`.
    pub fn is_quarantined(&self, region: Region, at: SimTime) -> bool {
        self.state(region, at) == BreakerState::Open
    }

    /// Every quarantined region at `at`, in catalog (map) order.
    pub fn quarantined(&self, at: SimTime) -> Vec<Region> {
        self.breakers
            .iter()
            .filter(|(_, b)| b.state_at(at) == BreakerState::Open)
            .map(|(&r, _)| r)
            .collect()
    }

    /// Records a chaos-attributed launch rejection in `region`. In
    /// `Closed` this is a strike (tripping at the policy threshold); in
    /// `HalfOpen` it is a failed probe and re-trips with an escalated
    /// quarantine; in `Open` it is ignored (the region should not have
    /// been asked).
    ///
    /// Returns the state change this observation caused, if any, so the
    /// trace layer can log it. Lazy `Open → HalfOpen` expiry is not an
    /// observation; it surfaces as the `from` state of the next one.
    pub fn record_rejection(&mut self, region: Region, at: SimTime) -> Option<BreakerTransition> {
        let (seed, policy) = (self.seed, self.policy.clone());
        let breaker = self.breakers.entry(region).or_insert_with(RegionBreaker::new);
        match breaker.state_at(at) {
            BreakerState::Closed => {
                breaker.state = BreakerState::Closed;
                breaker.strikes += 1;
                if breaker.strikes >= policy.strike_threshold {
                    Self::trip(breaker, &policy, seed, region, at);
                    self.trips += 1;
                    return Some(BreakerTransition {
                        region,
                        from: BreakerState::Closed,
                        to: BreakerState::Open,
                    });
                }
                None
            }
            BreakerState::HalfOpen => {
                self.probes += 1;
                self.probe_failures += 1;
                Self::trip(breaker, &policy, seed, region, at);
                self.trips += 1;
                Some(BreakerTransition {
                    region,
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Open,
                })
            }
            BreakerState::Open => None,
        }
    }

    /// Records a chaos-attributed interruption in `region` — same
    /// weight as a rejection.
    pub fn record_interruption(
        &mut self,
        region: Region,
        at: SimTime,
    ) -> Option<BreakerTransition> {
        self.record_rejection(region, at)
    }

    /// Records a fulfilled launch in `region`: heals `Closed` strikes and
    /// closes a `HalfOpen` breaker (successful probe). Never creates a
    /// ledger entry, so fault-free runs stay structurally idle.
    ///
    /// Returns the `HalfOpen → Closed` transition when the fulfillment
    /// closed a probing breaker.
    pub fn record_fulfillment(
        &mut self,
        region: Region,
        at: SimTime,
    ) -> Option<BreakerTransition> {
        let breaker = self.breakers.get_mut(&region)?;
        match breaker.state_at(at) {
            BreakerState::Closed => {
                breaker.strikes = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.probes += 1;
                breaker.state = BreakerState::Closed;
                breaker.strikes = 0;
                Some(BreakerTransition {
                    region,
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Closed,
                })
            }
            BreakerState::Open => None,
        }
    }

    fn trip(
        breaker: &mut RegionBreaker,
        policy: &BreakerPolicy,
        seed: u64,
        region: Region,
        at: SimTime,
    ) {
        breaker.trips += 1;
        breaker.state = BreakerState::Open;
        breaker.strikes = 0;
        breaker.reopen_at = at + policy.quarantine(seed, region, breaker.trips);
    }
}

/// How fresh the telemetry behind the run's decisions was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryFreshness {
    /// Decisions served from a last-good snapshot while collection was
    /// failing.
    pub stale_serves: u64,
    /// Oldest snapshot age ever served.
    pub max_staleness: SimDuration,
    /// Decisions degraded to cheapest-on-demand because the snapshot
    /// outlived the TTL.
    pub degraded_decisions: u64,
    /// Total time spent past the TTL (degraded placement mode).
    pub degraded_time: SimDuration,
    /// Monitor collection cycles that errored.
    pub collection_failures: u64,
}

/// Resilience counters for one experiment run. All zeros on a fault-free
/// run: the control plane only engages when faults are injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceTelemetry {
    /// Breaker `Closed → Open` transitions.
    pub breaker_trips: u64,
    /// Half-open probe outcomes observed.
    pub half_open_probes: u64,
    /// Half-open probes rejected (re-trips).
    pub probe_failures: u64,
    /// Decisions taken while at least one region was quarantined.
    pub quarantined_decisions: u64,
    /// Telemetry freshness counters.
    pub freshness: TelemetryFreshness,
}

/// Resilience-plane configuration carried by
/// [`ExperimentConfig`](crate::ExperimentConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthConfig {
    /// Breaker tuning.
    pub breaker: BreakerPolicy,
    /// Snapshot age past which decisions degrade to cheapest-on-demand
    /// placement instead of trusting expired metrics.
    pub telemetry_ttl: SimDuration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            breaker: BreakerPolicy::default(),
            telemetry_ttl: SimDuration::from_hours(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(hours: u64) -> SimTime {
        SimTime::from_hours(hours)
    }

    fn no_jitter() -> BreakerPolicy {
        BreakerPolicy {
            jitter: SimDuration::ZERO,
            ..BreakerPolicy::default()
        }
    }

    #[test]
    fn strikes_accumulate_and_trip_at_threshold() {
        let mut h = RegionHealth::new(no_jitter(), 7);
        assert_eq!(h.record_rejection(Region::CaCentral1, t(1)), None);
        assert_eq!(h.state(Region::CaCentral1, t(1)), BreakerState::Closed);
        assert_eq!(
            h.record_rejection(Region::CaCentral1, t(1)),
            Some(BreakerTransition {
                region: Region::CaCentral1,
                from: BreakerState::Closed,
                to: BreakerState::Open,
            })
        );
        assert_eq!(h.state(Region::CaCentral1, t(1)), BreakerState::Open);
        assert_eq!(h.trips(), 1);
        assert_eq!(h.quarantined(t(1)), vec![Region::CaCentral1]);
        // Other regions are unaffected.
        assert_eq!(h.state(Region::UsEast1, t(1)), BreakerState::Closed);
    }

    #[test]
    fn fulfillment_heals_closed_strikes() {
        let mut h = RegionHealth::new(no_jitter(), 7);
        h.record_rejection(Region::UsWest1, t(1));
        h.record_fulfillment(Region::UsWest1, t(2));
        h.record_rejection(Region::UsWest1, t(3));
        // The healed strike no longer counts toward the threshold.
        assert_eq!(h.state(Region::UsWest1, t(3)), BreakerState::Closed);
        assert_eq!(h.trips(), 0);
    }

    #[test]
    fn fulfillment_never_creates_entries() {
        let mut h = RegionHealth::new(BreakerPolicy::default(), 7);
        for region in Region::ALL {
            h.record_fulfillment(region, t(1));
        }
        assert!(h.is_idle(), "fault-free ledgers stay structurally empty");
        assert_eq!((h.trips(), h.probes(), h.probe_failures()), (0, 0, 0));
        assert!(h.quarantined(t(5)).is_empty());
    }

    #[test]
    fn quarantine_relaxes_to_half_open_then_probe_decides() {
        let mut h = RegionHealth::new(no_jitter(), 7);
        h.record_rejection(Region::EuNorth1, t(1));
        h.record_rejection(Region::EuNorth1, t(1));
        // Base quarantine is 1 h: open until t+1h, half-open after.
        assert_eq!(h.state(Region::EuNorth1, t(1)), BreakerState::Open);
        assert_eq!(h.state(Region::EuNorth1, t(2)), BreakerState::HalfOpen);
        assert!(h.quarantined(t(2)).is_empty(), "half-open is served again");
        // A successful probe closes (and reports the transition).
        assert_eq!(
            h.record_fulfillment(Region::EuNorth1, t(2)),
            Some(BreakerTransition {
                region: Region::EuNorth1,
                from: BreakerState::HalfOpen,
                to: BreakerState::Closed,
            })
        );
        assert_eq!(h.state(Region::EuNorth1, t(2)), BreakerState::Closed);
        assert_eq!((h.probes(), h.probe_failures()), (1, 0));
    }

    #[test]
    fn failed_probe_re_trips_with_escalated_quarantine() {
        let mut h = RegionHealth::new(no_jitter(), 7);
        h.record_rejection(Region::EuWest1, t(0));
        h.record_rejection(Region::EuWest1, t(0));
        // First quarantine: 1 h. Probe at t=2h fails; the observation
        // reports the half-open breaker re-tripping.
        assert_eq!(
            h.record_rejection(Region::EuWest1, t(2)),
            Some(BreakerTransition {
                region: Region::EuWest1,
                from: BreakerState::HalfOpen,
                to: BreakerState::Open,
            })
        );
        assert_eq!(h.trips(), 2);
        assert_eq!((h.probes(), h.probe_failures()), (1, 1));
        // Second quarantine doubles to 2 h: still open at +1.5h, half-open
        // after +2h.
        assert_eq!(h.state(Region::EuWest1, t(3)), BreakerState::Open);
        assert_eq!(h.state(Region::EuWest1, t(4)), BreakerState::HalfOpen);
    }

    #[test]
    fn quarantine_doubles_but_caps() {
        let policy = no_jitter();
        let q = |trip| policy.quarantine(7, Region::UsEast1, trip);
        assert_eq!(q(1), SimDuration::from_hours(1));
        assert_eq!(q(2), SimDuration::from_hours(2));
        assert_eq!(q(4), SimDuration::from_hours(8));
        assert_eq!(q(10), SimDuration::from_hours(8), "capped at max_quarantine");
    }

    #[test]
    fn jitter_is_bounded_and_keyed() {
        let jitter = SimDuration::from_mins(10);
        for trip in 1..8 {
            let j = jitter_secs(7, Region::UsEast1, trip, jitter);
            assert!(j <= jitter.as_secs());
            assert_eq!(j, jitter_secs(7, Region::UsEast1, trip, jitter));
        }
        // Different regions decorrelate (at least one differs over a few
        // trips).
        let a: Vec<u64> = (1..8).map(|i| jitter_secs(7, Region::UsEast1, i, jitter)).collect();
        let b: Vec<u64> = (1..8).map(|i| jitter_secs(7, Region::EuWest1, i, jitter)).collect();
        assert_ne!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// An open breaker is never served: from the trip instant until
        /// the quarantine expires, the region is in every `quarantined`
        /// answer and `state` reports `Open`.
        #[test]
        fn open_regions_are_never_served(
            seed in 0u64..u64::MAX,
            strikes in 2u32..6,
            probe_offsets in prop::collection::vec(0u64..7200, 1..8),
        ) {
            let policy = BreakerPolicy::default();
            let threshold = policy.strike_threshold;
            let mut h = RegionHealth::new(policy.clone(), seed);
            let region = Region::ApNortheast3;
            let trip_at = t(1);
            for _ in 0..strikes.max(threshold) {
                h.record_rejection(region, trip_at);
            }
            prop_assert_eq!(h.state(region, trip_at), BreakerState::Open);
            // The quarantine is at least the base window; inside it the
            // region is always excluded.
            let min_q = policy.base_quarantine.as_secs();
            for &off in &probe_offsets {
                let at = trip_at + SimDuration::from_secs(off % min_q);
                prop_assert!(h.is_quarantined(region, at));
                prop_assert!(h.quarantined(at).contains(&region));
            }
        }

        /// Quarantines always expire: past the cap plus jitter the breaker
        /// re-probes (half-open), no matter how many times it tripped.
        #[test]
        fn always_reprobes_after_quarantine(
            seed in 0u64..u64::MAX,
            re_trips in 0u32..6,
        ) {
            let policy = BreakerPolicy::default();
            let mut h = RegionHealth::new(policy.clone(), seed);
            let region = Region::EuWest3;
            let mut now = t(1);
            let bound = SimDuration::from_secs(
                policy.max_quarantine.as_secs() + policy.jitter.as_secs() + 1,
            );
            h.record_rejection(region, now);
            h.record_rejection(region, now);
            for _ in 0..re_trips {
                prop_assert_eq!(h.state(region, now), BreakerState::Open);
                now += bound;
                // Past the worst-case window the breaker must be probing.
                prop_assert_eq!(h.state(region, now), BreakerState::HalfOpen);
                // A failed probe re-trips...
                h.record_rejection(region, now);
            }
            now += bound;
            prop_assert_eq!(h.state(region, now), BreakerState::HalfOpen);
            // ...and a successful probe always recovers the region.
            h.record_fulfillment(region, now);
            prop_assert_eq!(h.state(region, now), BreakerState::Closed);
            prop_assert!(h.quarantined(now).is_empty());
        }

        /// The ledger is a pure function of (seed, policy, event trace):
        /// replaying the same events gives identical states and counters.
        #[test]
        fn deterministic_under_fixed_seed(
            seed in 0u64..u64::MAX,
            events in prop::collection::vec((0u8..3, 0usize..12, 0u64..200), 1..40),
        ) {
            let run = || {
                let mut h = RegionHealth::new(BreakerPolicy::default(), seed);
                for &(kind, region_idx, hour) in &events {
                    let region = Region::ALL[region_idx % Region::ALL.len()];
                    match kind {
                        0 => h.record_rejection(region, t(hour)),
                        1 => h.record_interruption(region, t(hour)),
                        _ => h.record_fulfillment(region, t(hour)),
                    };
                }
                h
            };
            let (a, b) = (run(), run());
            prop_assert_eq!(&a, &b);
            for hour in [0u64, 50, 100, 250] {
                prop_assert_eq!(a.quarantined(t(hour)), b.quarantined(t(hour)));
            }
        }
    }
}
