//! SpotVerse configuration.

use cloud_market::{InstanceType, Region};
use serde::{Deserialize, Serialize};

/// How SpotVerse places the fleet initially (paper §5.2.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialPlacement {
    /// Start every workload in one region and rely on migration (the
    /// configuration of the §5.2.1 experiments).
    SingleRegion(Region),
    /// Distribute round-robin over the top-scoring regions (the full
    /// Algorithm 1 initial-distribution strategy).
    Distributed,
}

/// SpotVerse configuration: the inputs of Algorithm 1.
///
/// # Examples
///
/// ```
/// use cloud_market::{InstanceType, Region};
/// use spotverse::{InitialPlacement, SpotVerseConfig};
///
/// let config = SpotVerseConfig::builder(InstanceType::M5Xlarge)
///     .threshold(6)
///     .max_regions(4)
///     .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
///     .build();
/// assert_eq!(config.threshold(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotVerseConfig {
    instance_type: InstanceType,
    threshold: u8,
    max_regions: usize,
    initial_placement: InitialPlacement,
    preferred_regions: Option<Vec<Region>>,
}

impl SpotVerseConfig {
    /// Starts building a configuration for an instance type.
    pub fn builder(instance_type: InstanceType) -> SpotVerseConfigBuilder {
        SpotVerseConfigBuilder {
            instance_type,
            threshold: 6,
            max_regions: 4,
            initial_placement: InitialPlacement::Distributed,
            preferred_regions: None,
        }
    }

    /// The paper's default configuration: threshold 6, four regions,
    /// distributed initial placement.
    pub fn paper_default(instance_type: InstanceType) -> Self {
        SpotVerseConfig::builder(instance_type).build()
    }

    /// The instance type being managed.
    pub fn instance_type(&self) -> InstanceType {
        self.instance_type
    }

    /// The combined-score threshold `T` of Algorithm 1.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// The maximum number of regions `R` of Algorithm 1 (the paper sets 4).
    pub fn max_regions(&self) -> usize {
        self.max_regions
    }

    /// The initial placement strategy.
    pub fn initial_placement(&self) -> &InitialPlacement {
        &self.initial_placement
    }

    /// User-preferred regions, if restricted.
    pub fn preferred_regions(&self) -> Option<&[Region]> {
        self.preferred_regions.as_deref()
    }

    /// Whether a region is admissible under the preference filter.
    pub fn allows_region(&self, region: Region) -> bool {
        match &self.preferred_regions {
            Some(preferred) => preferred.contains(&region),
            None => true,
        }
    }
}

/// Builder for [`SpotVerseConfig`].
#[derive(Debug, Clone)]
pub struct SpotVerseConfigBuilder {
    instance_type: InstanceType,
    threshold: u8,
    max_regions: usize,
    initial_placement: InitialPlacement,
    preferred_regions: Option<Vec<Region>>,
}

impl SpotVerseConfigBuilder {
    /// Sets the combined-score threshold (paper evaluates 4, 5, 6).
    pub fn threshold(mut self, threshold: u8) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the maximum number of target regions.
    ///
    /// # Panics
    ///
    /// Panics if `max_regions` is zero.
    pub fn max_regions(mut self, max_regions: usize) -> Self {
        assert!(max_regions > 0, "max_regions must be positive");
        self.max_regions = max_regions;
        self
    }

    /// Sets the initial placement strategy.
    pub fn initial_placement(mut self, placement: InitialPlacement) -> Self {
        self.initial_placement = placement;
        self
    }

    /// Restricts SpotVerse to user-preferred regions.
    pub fn preferred_regions(mut self, regions: Vec<Region>) -> Self {
        self.preferred_regions = Some(regions);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SpotVerseConfig {
        SpotVerseConfig {
            instance_type: self.instance_type,
            threshold: self.threshold,
            max_regions: self.max_regions,
            initial_placement: self.initial_placement,
            preferred_regions: self.preferred_regions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SpotVerseConfig::paper_default(InstanceType::M5Xlarge);
        assert_eq!(c.threshold(), 6);
        assert_eq!(c.max_regions(), 4);
        assert_eq!(c.initial_placement(), &InitialPlacement::Distributed);
        assert_eq!(c.preferred_regions(), None);
        assert!(c.allows_region(Region::UsEast1));
    }

    #[test]
    fn builder_overrides() {
        let c = SpotVerseConfig::builder(InstanceType::R52xlarge)
            .threshold(4)
            .max_regions(2)
            .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
            .preferred_regions(vec![Region::CaCentral1, Region::UsEast1])
            .build();
        assert_eq!(c.instance_type(), InstanceType::R52xlarge);
        assert_eq!(c.threshold(), 4);
        assert_eq!(c.max_regions(), 2);
        assert!(c.allows_region(Region::UsEast1));
        assert!(!c.allows_region(Region::EuWest1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_regions_rejected() {
        let _ = SpotVerseConfig::builder(InstanceType::M5Xlarge).max_regions(0);
    }
}
