//! Multi-provider metric availability (paper §7 future work).
//!
//! "Azure only provides Interruption Frequency data, while Google Cloud
//! Platform currently lacks comprehensive spot instance metrics." This
//! module models running Algorithm 1 under degraded metric availability:
//! unavailable metrics are replaced by neutral priors, which collapses the
//! combined score toward price-only selection — exactly the behaviour gap
//! the ablation bench quantifies.

use cloud_market::{PlacementScore, Region, StabilityScore};
use serde::{Deserialize, Serialize};

use crate::config::{InitialPlacement, SpotVerseConfig};
use crate::optimizer::{MigrationPolicy, Optimizer, Placement, RegionAssessment};
use crate::strategy::{Strategy, StrategyContext};

/// Which advisor metrics a cloud provider exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricAvailability {
    /// AWS-like: Interruption Frequency and Spot Placement Score.
    Full,
    /// Azure-like: Interruption Frequency only.
    InterruptionOnly,
    /// GCP-like: neither metric (prices only).
    PriceOnly,
}

impl MetricAvailability {
    /// Every availability level, richest first.
    pub const ALL: [MetricAvailability; 3] = [
        MetricAvailability::Full,
        MetricAvailability::InterruptionOnly,
        MetricAvailability::PriceOnly,
    ];

    /// A short provider-style label.
    pub fn label(self) -> &'static str {
        match self {
            MetricAvailability::Full => "full (AWS-like)",
            MetricAvailability::InterruptionOnly => "interruption-only (Azure-like)",
            MetricAvailability::PriceOnly => "price-only (GCP-like)",
        }
    }
}

impl std::fmt::Display for MetricAvailability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Neutral placement prior used when the provider hides the real score.
const NEUTRAL_PLACEMENT: u8 = 5;
/// Neutral stability prior used when the provider hides interruption data.
const NEUTRAL_STABILITY: u8 = 2;

/// Degrades assessments to what the provider actually exposes: hidden
/// metrics are replaced by neutral priors (identical across regions, so
/// they stop differentiating the selection).
pub fn degrade_assessments(
    assessments: &[RegionAssessment],
    availability: MetricAvailability,
) -> Vec<RegionAssessment> {
    assessments
        .iter()
        .map(|a| {
            let mut out = *a;
            match availability {
                MetricAvailability::Full => {}
                MetricAvailability::InterruptionOnly => {
                    out.placement =
                        PlacementScore::new(NEUTRAL_PLACEMENT).expect("neutral in range");
                }
                MetricAvailability::PriceOnly => {
                    out.placement =
                        PlacementScore::new(NEUTRAL_PLACEMENT).expect("neutral in range");
                    out.stability =
                        StabilityScore::new(NEUTRAL_STABILITY).expect("neutral in range");
                }
            }
            out
        })
        .collect()
}

/// SpotVerse as ported to a provider with the given metric availability.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderAdaptedStrategy {
    optimizer: Optimizer,
    availability: MetricAvailability,
    name: String,
}

impl ProviderAdaptedStrategy {
    /// Creates the adapted strategy.
    ///
    /// With degraded availability the configured threshold is re-based so
    /// neutral priors do not unintentionally filter everything out: the
    /// hidden metric's neutral value is added to the caller's intent of
    /// "how much observed signal must a region show".
    pub fn new(config: SpotVerseConfig, availability: MetricAvailability) -> Self {
        let name = match availability {
            MetricAvailability::Full => "spotverse-aws",
            MetricAvailability::InterruptionOnly => "spotverse-azure",
            MetricAvailability::PriceOnly => "spotverse-gcp",
        };
        ProviderAdaptedStrategy {
            optimizer: Optimizer::new(config),
            availability,
            name: name.to_owned(),
        }
    }

    /// The availability this strategy operates under.
    pub fn availability(&self) -> MetricAvailability {
        self.availability
    }
}

impl Strategy for ProviderAdaptedStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_placements_into(
        &mut self,
        ctx: &mut StrategyContext<'_>,
        n: usize,
        out: &mut Vec<Placement>,
    ) {
        let degraded = degrade_assessments(ctx.assessments, self.availability);
        match self.optimizer.config().initial_placement() {
            InitialPlacement::SingleRegion(region) => {
                out.extend(std::iter::repeat_n(Placement::Spot(*region), n));
            }
            InitialPlacement::Distributed => {
                self.optimizer.initial_placements_into(&degraded, n, &[], out);
            }
        }
    }

    fn relocate(&mut self, ctx: &mut StrategyContext<'_>, previous: Region) -> Placement {
        let degraded = degrade_assessments(ctx.assessments, self.availability);
        self.optimizer
            .migration_target(&degraded, previous, MigrationPolicy::RandomTopR, &[], ctx.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::{InstanceType, UsdPerHour};
    use sim_kernel::{SimRng, SimTime};

    fn assessment(region: Region, placement: u8, stability: u8, price: f64) -> RegionAssessment {
        RegionAssessment {
            region,
            placement: PlacementScore::new(placement).unwrap(),
            stability: StabilityScore::new(stability).unwrap(),
            spot_price: UsdPerHour::new(price),
            on_demand_price: UsdPerHour::new(price * 4.0),
        }
    }

    fn fixture() -> Vec<RegionAssessment> {
        vec![
            assessment(Region::ApNortheast3, 7, 3, 0.086),
            assessment(Region::EuNorth1, 5, 2, 0.079),
            assessment(Region::CaCentral1, 4, 1, 0.042),
            assessment(Region::UsEast1, 3, 1, 0.0455),
        ]
    }

    #[test]
    fn full_availability_is_identity() {
        let original = fixture();
        let degraded = degrade_assessments(&original, MetricAvailability::Full);
        assert_eq!(degraded, original);
    }

    #[test]
    fn interruption_only_neutralizes_placement() {
        let degraded = degrade_assessments(&fixture(), MetricAvailability::InterruptionOnly);
        assert!(degraded.iter().all(|a| a.placement.value() == 5));
        // Stability survives (Azure publishes eviction rates).
        assert_eq!(degraded[0].stability.value(), 3);
        assert_eq!(degraded[2].stability.value(), 1);
    }

    #[test]
    fn price_only_collapses_scores_entirely() {
        let degraded = degrade_assessments(&fixture(), MetricAvailability::PriceOnly);
        let combined: Vec<u8> = degraded.iter().map(|a| a.combined().value()).collect();
        assert!(
            combined.windows(2).all(|w| w[0] == w[1]),
            "all regions score identically: {combined:?}"
        );
    }

    #[test]
    fn gcp_mode_degenerates_to_cheapest_price() {
        // With collapsed scores, Algorithm 1's selection is pure price
        // ordering — the SkyPilot behaviour the paper contrasts against.
        let mut strategy = ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(7)
                .build(),
            MetricAvailability::PriceOnly,
        );
        let assessments = fixture();
        let mut rng = SimRng::seed_from_u64(1);
        let mut ctx = StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::ZERO,
            assessments: &assessments,
            quarantined: &[],
            rng: &mut rng,
        };
        let placements = strategy.initial_placements(&mut ctx, 4);
        // Neutral combined = 7, threshold 7 → all pass; cheapest-first
        // round-robin starts at ca-central-1 (0.042).
        assert_eq!(placements[0].region(), Region::CaCentral1);
        assert_eq!(strategy.availability(), MetricAvailability::PriceOnly);
        assert_eq!(strategy.name(), "spotverse-gcp");
    }

    #[test]
    fn azure_mode_still_avoids_unstable_regions() {
        let mut strategy = ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(7) // neutral placement 5 + stability ≥ 2
                .build(),
            MetricAvailability::InterruptionOnly,
        );
        let assessments = fixture();
        let mut rng = SimRng::seed_from_u64(2);
        let mut ctx = StrategyContext {
            instance_type: InstanceType::M5Xlarge,
            now: SimTime::ZERO,
            assessments: &assessments,
            quarantined: &[],
            rng: &mut rng,
        };
        for _ in 0..50 {
            let p = strategy.relocate(&mut ctx, Region::EuWest1);
            // Stability-1 regions score 5 + 1 = 6 < 7 and are filtered.
            assert!(
                !matches!(p.region(), Region::CaCentral1 | Region::UsEast1),
                "unstable region selected: {p:?}"
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = MetricAvailability::ALL.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
        assert_eq!(MetricAvailability::Full.to_string(), "full (AWS-like)");
    }
}
