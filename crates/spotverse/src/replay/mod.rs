//! Event-sourced replay of trace JSONL streams.
//!
//! The trace log written by `spotverse::trace` is the system of record:
//! every consequential decision, launch, interruption, checkpoint, and
//! breaker transition lands there. This module promotes the log to
//! ground truth by rebuilding derived analytics — per-region cost
//! ledgers, breaker timelines, occupancy curves, checkpoint overhead,
//! shard accounting — purely from parsed records:
//!
//! - [`parse`] inverts the canonical JSONL writer byte-for-byte
//!   ([`parse_trace_jsonl`] / [`trace_lines_to_jsonl`]), rejecting
//!   corrupt lines with an error naming the line number.
//! - [`views`] holds the pure fold aggregates: `fold(state, record)`
//!   has no clocks and no I/O, so replay is deterministic, chunkable,
//!   and resumable with identical results.
//! - [`cursor`] feeds arbitrary text chunks through the folds,
//!   buffering partial lines; [`ReplayCursor::snapshot`] /
//!   [`ReplayCursor::resume`] serialize the whole position + state.
//! - [`analytics`] derives distribution-level figures (percentiles,
//!   per-strategy cost/makespan summaries, pairwise win matrices) and
//!   renders the deterministic text the `spotverse analyse` CLI and the
//!   golden-analytics snapshots share.

mod json;

pub mod analytics;
pub mod cursor;
pub mod parse;
pub mod views;

pub use analytics::{
    render_analysis, render_analysis_json, strategy_distributions, win_matrix, Percentiles,
    StrategyDistribution, WinMatrix,
};
pub use cursor::{replay_str, ReplayCursor};
pub use parse::{parse_trace_jsonl, parse_trace_line, trace_lines_to_jsonl, TraceLine, TraceParseError};
pub use views::{
    replay_lines, state_from_json, state_to_json, BreakerTransition, BreakerView, CellState,
    CheckpointView, CostLedgerView, OccupancyView, RegionLedger, ReplayState, ResilienceView,
    RunSummary, ShardView, TimeWindow,
};
