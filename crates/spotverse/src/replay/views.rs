//! Derived analytics views folded from trace records.
//!
//! Every view is a pure fold: `fold(state, record) -> state` with no
//! clocks, no I/O, and no dependence on chunking — replaying a trace in
//! one pass, in arbitrary chunk splits, or resuming from a serialized
//! snapshot yields byte-identical view state. That purity contract is
//! what makes the trace log the system of record: any figure a live run
//! reports must be recomputable from the log alone.

use std::fmt::Write as _;
use std::str::FromStr;

use cloud_market::Region;
use sim_kernel::SimTime;

use crate::health::BreakerState;
use crate::trace::{DecisionKind, TraceEvent, TraceRecord};

use super::json::{self, num_f64, num_u64, Fields, JsonVal};
use super::parse::TraceLine;

/// Number of regions tracked by the flat per-region arrays.
pub const REGIONS: usize = Region::ALL.len();

/// A half-open sim-time window restricting which records are folded.
///
/// `None` bounds are unbounded. A record at time `t` is folded when
/// `from <= t` and `t < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeWindow {
    /// Inclusive lower bound.
    pub from: Option<SimTime>,
    /// Exclusive upper bound.
    pub until: Option<SimTime>,
}

impl TimeWindow {
    /// The unbounded window.
    pub const ALL: TimeWindow = TimeWindow { from: None, until: None };

    /// Whether a record at `at` falls inside the window.
    #[must_use]
    pub fn contains(&self, at: SimTime) -> bool {
        if let Some(from) = self.from {
            if at < from {
                return false;
            }
        }
        if let Some(until) = self.until {
            if at >= until {
                return false;
            }
        }
        true
    }
}

/// Run-level identity and outcome figures for one cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Strategy name from `run_started`.
    pub strategy: Option<String>,
    /// Experiment seed from `run_started`.
    pub seed: Option<u64>,
    /// Fleet size from `run_started`.
    pub workloads: Option<usize>,
    /// Chaos scenario from `run_started`.
    pub chaos: Option<String>,
    /// Market regime from `run_started` (`None` for baseline runs).
    pub regime: Option<String>,
    /// `run_started` timestamp.
    pub started_at: Option<SimTime>,
    /// `run_ended` timestamp.
    pub ended_at: Option<SimTime>,
    /// Latest `completed` timestamp.
    pub last_completion: Option<SimTime>,
    /// Completed workloads (from `run_ended` when present, else counted).
    pub completed: usize,
    /// Whether the run hit its max-runtime deadline.
    pub aborted: bool,
    /// Placement decisions folded.
    pub decisions: u64,
    /// Migration decisions folded.
    pub migrations: u64,
}

impl RunSummary {
    /// Makespan derived purely from the trace: latest completion minus
    /// run start. `None` until both ends are visible.
    #[must_use]
    pub fn makespan_secs(&self) -> Option<u64> {
        let start = self.started_at?;
        let last = self.last_completion?;
        Some(last.saturating_duration_since(start).as_secs())
    }
}

/// Per-region cost and launch ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionLedger {
    /// Spot launches.
    pub spot_launches: u64,
    /// On-demand launches.
    pub on_demand_launches: u64,
    /// Spot interruptions.
    pub interruptions: u64,
    /// Workload completions.
    pub completions: u64,
    /// Deadline expirations attributed here.
    pub expirations: u64,
    /// Spot requests declined for capacity.
    pub request_opens: u64,
    /// Spot requests failed outright.
    pub request_failures: u64,
    /// Launches deferred by the concurrency cap.
    pub capacity_deferrals: u64,
    /// Billed instance-usage dollars attributed here.
    pub billed: f64,
}

impl RegionLedger {
    fn is_zero(&self) -> bool {
        *self == RegionLedger::default()
    }
}

/// Cost ledger: spend and launch activity attributed per region.
#[derive(Debug, Clone, PartialEq)]
pub struct CostLedgerView {
    /// One ledger entry per [`Region::ALL`] slot.
    pub regions: [RegionLedger; REGIONS],
    /// Billed dollars with no region attribution (expiry of a workload
    /// whose region was not recorded).
    pub unattributed_billed: f64,
}

impl Default for CostLedgerView {
    fn default() -> Self {
        CostLedgerView {
            regions: [RegionLedger::default(); REGIONS],
            unattributed_billed: 0.0,
        }
    }
}

impl CostLedgerView {
    /// Total billed dollars across every region plus unattributed spend.
    #[must_use]
    pub fn billed_total(&self) -> f64 {
        self.regions.iter().map(|r| r.billed).sum::<f64>() + self.unattributed_billed
    }

    /// Regions with any activity, in [`Region::ALL`] order.
    pub fn active(&self) -> impl Iterator<Item = (Region, &RegionLedger)> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_zero())
            .map(|(i, l)| (Region::ALL[i], l))
    }
}

/// One circuit-breaker transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// When it happened.
    pub at: SimTime,
    /// The affected region.
    pub region: Region,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// Breaker state timeline: ordered transitions plus per-region tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerView {
    /// Every transition in fold order.
    pub transitions: Vec<BreakerTransition>,
    /// Trips (transitions *to* [`BreakerState::Open`]) per region.
    pub trips: [u64; REGIONS],
    /// Last-seen state per region (breakers start closed).
    pub current: [BreakerState; REGIONS],
}

impl Default for BreakerView {
    fn default() -> Self {
        BreakerView {
            transitions: Vec::new(),
            trips: [0; REGIONS],
            current: [BreakerState::Closed; REGIONS],
        }
    }
}

impl BreakerView {
    /// Total trips across all regions.
    #[must_use]
    pub fn total_trips(&self) -> u64 {
        self.trips.iter().sum()
    }
}

/// Fleet occupancy: how many instances run concurrently over sim time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OccupancyView {
    /// Change points `(t, running-after)`, one per occupancy change.
    pub curve: Vec<(SimTime, i64)>,
    /// Instances running after the latest folded record.
    pub running: i64,
    /// Peak concurrent instances.
    pub peak: i64,
    /// Workloads announced by `run_started` (the full fleet size; the
    /// batch present at the start emits no arrival event).
    pub arrived: u64,
    /// Workloads arriving after the start in staggered batches
    /// (`workloads_arrived` events); already included in `arrived` when
    /// the `run_started` record is inside the window.
    pub late_arrivals: u64,
    /// Deadline expirations.
    pub expired: u64,
    /// Capacity-cap deferrals.
    pub deferred: u64,
    /// Integral of the occupancy curve: instance-seconds of runtime.
    pub instance_seconds: u64,
    /// Timestamp of the latest occupancy change (integration anchor).
    pub last_change: Option<SimTime>,
}

impl OccupancyView {
    fn shift(&mut self, at: SimTime, delta: i64) {
        if let Some(prev) = self.last_change {
            let dt = at.saturating_duration_since(prev).as_secs();
            if self.running > 0 {
                self.instance_seconds += self.running as u64 * dt;
            }
        }
        self.running += delta;
        self.peak = self.peak.max(self.running);
        self.last_change = Some(at);
        self.curve.push((at, self.running));
    }
}

/// Checkpoint overhead accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointView {
    /// Checkpoint write attempts.
    pub saves: u64,
    /// Writes whose generation record survived KV throttling.
    pub recorded: u64,
    /// Writes judged torn.
    pub torn: u64,
    /// Restores.
    pub restores: u64,
    /// Restores that fell back to a scratch restart.
    pub scratch_restores: u64,
    /// Durable-looking generations dropped as corrupt across restores.
    pub corrupt_dropped: u64,
    /// Work units covered by checkpoint writes.
    pub units_saved: u64,
    /// Work units resumed from across restores.
    pub units_restored: u64,
}

/// Dead-letter / re-drive summary for orchestrated sweeps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardView {
    /// Shard dispatches (first attempts and re-drives both emit one).
    pub dispatches: u64,
    /// Cells carried across all dispatches.
    pub cells_dispatched: u64,
    /// Lease expiries.
    pub lease_expiries: u64,
    /// Re-drives.
    pub redrives: u64,
    /// Shards dead-lettered.
    pub dead_lettered: u64,
    /// Shard completions (duplicates included).
    pub completions: u64,
    /// Completions that found the result already persisted.
    pub duplicates: u64,
    /// Highest attempt number observed.
    pub max_attempt: u32,
}

/// Degradation and fault counters mirroring `resilience_summary`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceView {
    /// Telemetry collection failures.
    pub collection_failures: u64,
    /// Failures the monitor classified retryable.
    pub retryable_failures: u64,
    /// Decisions served from stale-but-within-TTL snapshots.
    pub stale_serves: u64,
    /// Decisions degraded to on-demand by aged telemetry.
    pub degraded_decisions: u64,
    /// Total seconds spent inside degraded intervals.
    pub degraded_seconds: u64,
    /// Chaos fault activations.
    pub chaos_faults: u64,
}

/// All derived views for one trace cell, folded record by record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellState {
    /// Run identity and outcome.
    pub summary: RunSummary,
    /// Per-region cost ledger.
    pub ledger: CostLedgerView,
    /// Breaker timeline.
    pub breakers: BreakerView,
    /// Occupancy curve.
    pub occupancy: OccupancyView,
    /// Checkpoint accounting.
    pub checkpoints: CheckpointView,
    /// Orchestration shard accounting.
    pub shards: ShardView,
    /// Degradation counters.
    pub resilience: ResilienceView,
    /// Records folded into this cell.
    pub events: u64,
    /// Dropped-record count from a truncation marker, if one was seen.
    pub dropped: Option<u64>,
}

impl CellState {
    /// Folds one record into the cell. Pure: the resulting state depends
    /// only on the prior state and the record.
    pub fn fold(&mut self, record: &TraceRecord) {
        self.events += 1;
        let at = record.at;
        match &record.event {
            TraceEvent::RunStarted { strategy, seed, workloads, chaos, regime } => {
                self.summary.strategy = Some(strategy.clone());
                self.summary.seed = Some(*seed);
                self.summary.workloads = Some(*workloads);
                self.summary.chaos = chaos.clone();
                self.summary.regime = regime.clone();
                self.summary.started_at = Some(at);
                self.occupancy.arrived += *workloads as u64;
            }
            TraceEvent::CollectionFailed { retryable } => {
                self.resilience.collection_failures += 1;
                if *retryable {
                    self.resilience.retryable_failures += 1;
                }
            }
            TraceEvent::StaleServe { .. } => self.resilience.stale_serves += 1,
            TraceEvent::DegradedDecision { .. } => self.resilience.degraded_decisions += 1,
            TraceEvent::DegradedInterval { duration } => {
                self.resilience.degraded_seconds += duration.as_secs();
            }
            TraceEvent::Decision { kind, .. } => {
                self.summary.decisions += 1;
                if *kind == DecisionKind::Migration {
                    self.summary.migrations += 1;
                }
            }
            TraceEvent::Launched { region, spot, .. } => {
                let slot = &mut self.ledger.regions[*region as usize];
                if *spot {
                    slot.spot_launches += 1;
                } else {
                    slot.on_demand_launches += 1;
                }
                self.occupancy.shift(at, 1);
            }
            TraceEvent::RequestOpen { region, .. } => {
                self.ledger.regions[*region as usize].request_opens += 1;
            }
            TraceEvent::RequestFailed { region, .. } => {
                self.ledger.regions[*region as usize].request_failures += 1;
            }
            TraceEvent::Interrupted { region, billed, .. } => {
                let slot = &mut self.ledger.regions[*region as usize];
                slot.interruptions += 1;
                slot.billed += billed;
                self.occupancy.shift(at, -1);
            }
            TraceEvent::Completed { region, billed, .. } => {
                let slot = &mut self.ledger.regions[*region as usize];
                slot.completions += 1;
                slot.billed += billed;
                self.summary.last_completion = Some(at);
                self.occupancy.shift(at, -1);
            }
            TraceEvent::CheckpointSave { units, recorded, .. } => {
                self.checkpoints.saves += 1;
                if *recorded {
                    self.checkpoints.recorded += 1;
                }
                self.checkpoints.units_saved += *units as u64;
            }
            TraceEvent::CheckpointTorn { .. } => self.checkpoints.torn += 1,
            TraceEvent::CheckpointRestore { units, corrupt_dropped, scratch, .. } => {
                self.checkpoints.restores += 1;
                if *scratch {
                    self.checkpoints.scratch_restores += 1;
                }
                self.checkpoints.corrupt_dropped += corrupt_dropped;
                self.checkpoints.units_restored += *units as u64;
            }
            TraceEvent::Breaker { region, from, to } => {
                let idx = *region as usize;
                self.breakers.transitions.push(BreakerTransition {
                    at,
                    region: *region,
                    from: *from,
                    to: *to,
                });
                if *to == BreakerState::Open {
                    self.breakers.trips[idx] += 1;
                }
                self.breakers.current[idx] = *to;
            }
            TraceEvent::ChaosFault { .. } => self.resilience.chaos_faults += 1,
            TraceEvent::WorkloadsArrived { batch, .. } => {
                self.occupancy.late_arrivals += batch.len() as u64;
            }
            TraceEvent::CapacityDeferred { region, .. } => {
                self.ledger.regions[*region as usize].capacity_deferrals += 1;
                self.occupancy.deferred += 1;
            }
            TraceEvent::WorkloadExpired { region, billed, .. } => {
                self.occupancy.expired += 1;
                match region {
                    Some(region) => {
                        let slot = &mut self.ledger.regions[*region as usize];
                        slot.expirations += 1;
                        slot.billed += billed.unwrap_or(0.0);
                        self.occupancy.shift(at, -1);
                    }
                    None => self.ledger.unattributed_billed += billed.unwrap_or(0.0),
                }
            }
            TraceEvent::ShardDispatched { attempt, cells, .. } => {
                self.shards.dispatches += 1;
                self.shards.cells_dispatched += *cells as u64;
                self.shards.max_attempt = self.shards.max_attempt.max(*attempt);
            }
            TraceEvent::LeaseExpired { .. } => self.shards.lease_expiries += 1,
            TraceEvent::ShardRedriven { attempt, .. } => {
                self.shards.redrives += 1;
                self.shards.max_attempt = self.shards.max_attempt.max(*attempt);
            }
            TraceEvent::ShardDeadLettered { .. } => self.shards.dead_lettered += 1,
            TraceEvent::ShardCompleted { duplicate, .. } => {
                self.shards.completions += 1;
                if *duplicate {
                    self.shards.duplicates += 1;
                }
            }
            TraceEvent::RunEnded { completed, aborted } => {
                self.summary.ended_at = Some(at);
                self.summary.completed = *completed;
                self.summary.aborted = *aborted;
            }
        }
    }
}

/// The full replay state: one [`CellState`] per trace cell, in
/// first-seen order (single-run traces use the `""` key).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayState {
    /// `(cell key, folded views)` in first-seen order.
    pub cells: Vec<(String, CellState)>,
}

impl ReplayState {
    /// The cell for `key`, created on first touch.
    pub fn cell_mut(&mut self, key: &str) -> &mut CellState {
        if let Some(i) = self.cells.iter().position(|(k, _)| k == key) {
            return &mut self.cells[i].1;
        }
        self.cells.push((key.to_owned(), CellState::default()));
        &mut self.cells.last_mut().expect("just pushed").1
    }

    /// Looks up a cell by key.
    #[must_use]
    pub fn cell(&self, key: &str) -> Option<&CellState> {
        self.cells.iter().find(|(k, _)| k == key).map(|(_, c)| c)
    }

    /// Folds one parsed line, honouring the time window. Truncation
    /// markers are always folded (they carry no timestamp).
    pub fn fold_line(&mut self, line: &TraceLine, window: TimeWindow) {
        match line {
            TraceLine::Record { cell, record } => {
                if window.contains(record.at) {
                    self.cell_mut(cell.as_deref().unwrap_or("")).fold(record);
                }
            }
            TraceLine::Truncated { cell, dropped } => {
                let state = self.cell_mut(cell.as_deref().unwrap_or(""));
                state.dropped = Some(state.dropped.unwrap_or(0) + dropped);
            }
        }
    }
}

/// Replays a full parsed document into a fresh [`ReplayState`].
#[must_use]
pub fn replay_lines(lines: &[TraceLine], window: TimeWindow) -> ReplayState {
    let mut state = ReplayState::default();
    for line in lines {
        state.fold_line(line, window);
    }
    state
}

// ---------------------------------------------------------------------------
// Snapshot serialization (cursor resume).
// ---------------------------------------------------------------------------

fn breaker_label(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

fn parse_breaker(v: JsonVal) -> Result<BreakerState, String> {
    match v.into_str()?.as_str() {
        "closed" => Ok(BreakerState::Closed),
        "open" => Ok(BreakerState::Open),
        "half-open" => Ok(BreakerState::HalfOpen),
        other => Err(format!("unknown breaker state `{other}`")),
    }
}

fn num_i64(n: i64) -> JsonVal {
    let mut s = String::new();
    let _ = write!(s, "{n}");
    JsonVal::Num(s)
}

fn as_i64(v: &JsonVal) -> Result<i64, String> {
    match v {
        JsonVal::Num(raw) => raw.parse::<i64>().map_err(|_| format!("`{raw}` is not an i64")),
        other => Err(format!("expected integer, found {}", other.type_name())),
    }
}

fn u64_arr(values: &[u64]) -> JsonVal {
    JsonVal::Arr(values.iter().map(|v| num_u64(*v)).collect())
}

fn take_u64_arr<const N: usize>(fields: &mut Fields, key: &str) -> Result<[u64; N], String> {
    let items = fields.require(key)?.into_arr()?;
    if items.len() != N {
        return Err(format!("`{key}` must have {N} entries, found {}", items.len()));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Ok(out)
}

fn opt_time(t: Option<SimTime>) -> Option<JsonVal> {
    t.map(|t| num_u64(t.as_secs()))
}

fn push_opt(obj: &mut Vec<(String, JsonVal)>, key: &str, v: Option<JsonVal>) {
    if let Some(v) = v {
        obj.push((key.to_owned(), v));
    }
}

fn take_time(fields: &mut Fields, key: &str) -> Result<Option<SimTime>, String> {
    fields.take(key).map(|v| v.as_u64().map(SimTime::from_secs)).transpose()
}

impl RunSummary {
    fn to_json(&self) -> JsonVal {
        let mut obj = Vec::new();
        push_opt(&mut obj, "strategy", self.strategy.clone().map(JsonVal::Str));
        push_opt(&mut obj, "seed", self.seed.map(num_u64));
        push_opt(&mut obj, "workloads", self.workloads.map(|w| num_u64(w as u64)));
        push_opt(&mut obj, "chaos", self.chaos.clone().map(JsonVal::Str));
        push_opt(&mut obj, "regime", self.regime.clone().map(JsonVal::Str));
        push_opt(&mut obj, "started_at", opt_time(self.started_at));
        push_opt(&mut obj, "ended_at", opt_time(self.ended_at));
        push_opt(&mut obj, "last_completion", opt_time(self.last_completion));
        obj.push(("completed".to_owned(), num_u64(self.completed as u64)));
        obj.push(("aborted".to_owned(), JsonVal::Bool(self.aborted)));
        obj.push(("decisions".to_owned(), num_u64(self.decisions)));
        obj.push(("migrations".to_owned(), num_u64(self.migrations)));
        JsonVal::Obj(obj)
    }

    fn from_json(v: JsonVal) -> Result<Self, String> {
        let mut f = Fields::new(v.into_obj()?);
        let out = RunSummary {
            strategy: f.take("strategy").map(JsonVal::into_str).transpose()?,
            seed: f.take("seed").map(|v| v.as_u64()).transpose()?,
            workloads: f.take("workloads").map(|v| v.as_usize()).transpose()?,
            chaos: f.take("chaos").map(JsonVal::into_str).transpose()?,
            regime: f.take("regime").map(JsonVal::into_str).transpose()?,
            started_at: take_time(&mut f, "started_at")?,
            ended_at: take_time(&mut f, "ended_at")?,
            last_completion: take_time(&mut f, "last_completion")?,
            completed: f.require("completed")?.as_usize()?,
            aborted: f.require("aborted")?.as_bool()?,
            decisions: f.require("decisions")?.as_u64()?,
            migrations: f.require("migrations")?.as_u64()?,
        };
        f.finish()?;
        Ok(out)
    }
}

impl RegionLedger {
    fn to_json(self) -> JsonVal {
        JsonVal::Obj(vec![
            ("spot".to_owned(), num_u64(self.spot_launches)),
            ("od".to_owned(), num_u64(self.on_demand_launches)),
            ("interruptions".to_owned(), num_u64(self.interruptions)),
            ("completions".to_owned(), num_u64(self.completions)),
            ("expirations".to_owned(), num_u64(self.expirations)),
            ("opens".to_owned(), num_u64(self.request_opens)),
            ("failures".to_owned(), num_u64(self.request_failures)),
            ("deferrals".to_owned(), num_u64(self.capacity_deferrals)),
            ("billed".to_owned(), num_f64(self.billed)),
        ])
    }

    fn from_json(v: JsonVal) -> Result<Self, String> {
        let mut f = Fields::new(v.into_obj()?);
        let out = RegionLedger {
            spot_launches: f.require("spot")?.as_u64()?,
            on_demand_launches: f.require("od")?.as_u64()?,
            interruptions: f.require("interruptions")?.as_u64()?,
            completions: f.require("completions")?.as_u64()?,
            expirations: f.require("expirations")?.as_u64()?,
            request_opens: f.require("opens")?.as_u64()?,
            request_failures: f.require("failures")?.as_u64()?,
            capacity_deferrals: f.require("deferrals")?.as_u64()?,
            billed: f.require("billed")?.as_f64()?,
        };
        f.finish()?;
        Ok(out)
    }
}

impl CellState {
    /// Serializes the cell to a JSON value for cursor snapshots.
    pub(crate) fn to_json(&self) -> JsonVal {
        let mut obj = vec![("summary".to_owned(), self.summary.to_json())];
        let ledger: Vec<JsonVal> =
            self.ledger.regions.iter().map(|l| l.to_json()).collect();
        obj.push(("ledger".to_owned(), JsonVal::Arr(ledger)));
        obj.push(("unattributed".to_owned(), num_f64(self.ledger.unattributed_billed)));
        let transitions: Vec<JsonVal> = self
            .breakers
            .transitions
            .iter()
            .map(|t| {
                JsonVal::Arr(vec![
                    num_u64(t.at.as_secs()),
                    JsonVal::Str(t.region.name().to_owned()),
                    JsonVal::Str(breaker_label(t.from).to_owned()),
                    JsonVal::Str(breaker_label(t.to).to_owned()),
                ])
            })
            .collect();
        obj.push(("transitions".to_owned(), JsonVal::Arr(transitions)));
        obj.push(("trips".to_owned(), u64_arr(&self.breakers.trips)));
        obj.push((
            "breaker_states".to_owned(),
            JsonVal::Arr(
                self.breakers
                    .current
                    .iter()
                    .map(|s| JsonVal::Str(breaker_label(*s).to_owned()))
                    .collect(),
            ),
        ));
        let curve: Vec<JsonVal> = self
            .occupancy
            .curve
            .iter()
            .map(|(t, n)| JsonVal::Arr(vec![num_u64(t.as_secs()), num_i64(*n)]))
            .collect();
        obj.push(("curve".to_owned(), JsonVal::Arr(curve)));
        obj.push((
            "occupancy".to_owned(),
            JsonVal::Obj(vec![
                ("running".to_owned(), num_i64(self.occupancy.running)),
                ("peak".to_owned(), num_i64(self.occupancy.peak)),
                ("arrived".to_owned(), num_u64(self.occupancy.arrived)),
                ("late_arrivals".to_owned(), num_u64(self.occupancy.late_arrivals)),
                ("expired".to_owned(), num_u64(self.occupancy.expired)),
                ("deferred".to_owned(), num_u64(self.occupancy.deferred)),
                ("instance_seconds".to_owned(), num_u64(self.occupancy.instance_seconds)),
            ]),
        ));
        let mut occ_extra = Vec::new();
        push_opt(&mut occ_extra, "last_change", opt_time(self.occupancy.last_change));
        obj.extend(occ_extra);
        obj.push((
            "checkpoints".to_owned(),
            u64_arr(&[
                self.checkpoints.saves,
                self.checkpoints.recorded,
                self.checkpoints.torn,
                self.checkpoints.restores,
                self.checkpoints.scratch_restores,
                self.checkpoints.corrupt_dropped,
                self.checkpoints.units_saved,
                self.checkpoints.units_restored,
            ]),
        ));
        obj.push((
            "shards".to_owned(),
            u64_arr(&[
                self.shards.dispatches,
                self.shards.cells_dispatched,
                self.shards.lease_expiries,
                self.shards.redrives,
                self.shards.dead_lettered,
                self.shards.completions,
                self.shards.duplicates,
                u64::from(self.shards.max_attempt),
            ]),
        ));
        obj.push((
            "resilience".to_owned(),
            u64_arr(&[
                self.resilience.collection_failures,
                self.resilience.retryable_failures,
                self.resilience.stale_serves,
                self.resilience.degraded_decisions,
                self.resilience.degraded_seconds,
                self.resilience.chaos_faults,
            ]),
        ));
        obj.push(("events".to_owned(), num_u64(self.events)));
        push_opt(&mut obj, "dropped", self.dropped.map(num_u64));
        JsonVal::Obj(obj)
    }

    /// Rebuilds a cell from its snapshot value.
    pub(crate) fn from_json(v: JsonVal) -> Result<Self, String> {
        let mut f = Fields::new(v.into_obj()?);
        let summary = RunSummary::from_json(f.require("summary")?)?;
        let ledger_items = f.require("ledger")?.into_arr()?;
        if ledger_items.len() != REGIONS {
            return Err(format!("ledger must have {REGIONS} entries"));
        }
        let mut regions = [RegionLedger::default(); REGIONS];
        for (slot, item) in regions.iter_mut().zip(ledger_items) {
            *slot = RegionLedger::from_json(item)?;
        }
        let ledger = CostLedgerView {
            regions,
            unattributed_billed: f.require("unattributed")?.as_f64()?,
        };
        let transitions = f
            .require("transitions")?
            .into_arr()?
            .into_iter()
            .map(|item| {
                let mut parts = item.into_arr()?;
                if parts.len() != 4 {
                    return Err("breaker transition must have 4 entries".to_owned());
                }
                let to = parse_breaker(parts.pop().expect("len 4"))?;
                let from = parse_breaker(parts.pop().expect("len 3"))?;
                let region = parts.pop().expect("len 2").into_str()?;
                let region =
                    Region::from_str(&region).map_err(|_| format!("unknown region `{region}`"))?;
                let at = SimTime::from_secs(parts.pop().expect("len 1").as_u64()?);
                Ok(BreakerTransition { at, region, from, to })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let trips = take_u64_arr::<REGIONS>(&mut f, "trips")?;
        let state_items = f.require("breaker_states")?.into_arr()?;
        if state_items.len() != REGIONS {
            return Err(format!("breaker_states must have {REGIONS} entries"));
        }
        let mut current = [BreakerState::Closed; REGIONS];
        for (slot, item) in current.iter_mut().zip(state_items) {
            *slot = parse_breaker(item)?;
        }
        let curve = f
            .require("curve")?
            .into_arr()?
            .into_iter()
            .map(|item| {
                let mut parts = item.into_arr()?;
                if parts.len() != 2 {
                    return Err("curve point must have 2 entries".to_owned());
                }
                let n = as_i64(&parts.pop().expect("len 2"))?;
                let t = SimTime::from_secs(parts.pop().expect("len 1").as_u64()?);
                Ok((t, n))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mut occ = Fields::new(f.require("occupancy")?.into_obj()?);
        let occupancy = OccupancyView {
            curve,
            running: as_i64(&occ.require("running")?)?,
            peak: as_i64(&occ.require("peak")?)?,
            arrived: occ.require("arrived")?.as_u64()?,
            late_arrivals: occ.require("late_arrivals")?.as_u64()?,
            expired: occ.require("expired")?.as_u64()?,
            deferred: occ.require("deferred")?.as_u64()?,
            instance_seconds: occ.require("instance_seconds")?.as_u64()?,
            last_change: take_time(&mut f, "last_change")?,
        };
        occ.finish()?;
        let cp = take_u64_arr::<8>(&mut f, "checkpoints")?;
        let sh = take_u64_arr::<8>(&mut f, "shards")?;
        let rs = take_u64_arr::<6>(&mut f, "resilience")?;
        let events = f.require("events")?.as_u64()?;
        let dropped = f.take("dropped").map(|v| v.as_u64()).transpose()?;
        f.finish()?;
        Ok(CellState {
            summary,
            ledger,
            breakers: BreakerView { transitions, trips, current },
            occupancy,
            checkpoints: CheckpointView {
                saves: cp[0],
                recorded: cp[1],
                torn: cp[2],
                restores: cp[3],
                scratch_restores: cp[4],
                corrupt_dropped: cp[5],
                units_saved: cp[6],
                units_restored: cp[7],
            },
            shards: ShardView {
                dispatches: sh[0],
                cells_dispatched: sh[1],
                lease_expiries: sh[2],
                redrives: sh[3],
                dead_lettered: sh[4],
                completions: sh[5],
                duplicates: sh[6],
                max_attempt: u32::try_from(sh[7])
                    .map_err(|_| "max_attempt exceeds u32".to_owned())?,
            },
            resilience: ResilienceView {
                collection_failures: rs[0],
                retryable_failures: rs[1],
                stale_serves: rs[2],
                degraded_decisions: rs[3],
                degraded_seconds: rs[4],
                chaos_faults: rs[5],
            },
            events,
            dropped,
        })
    }
}

impl ReplayState {
    pub(crate) fn to_json(&self) -> JsonVal {
        JsonVal::Obj(
            self.cells
                .iter()
                .map(|(key, cell)| (key.clone(), cell.to_json()))
                .collect(),
        )
    }

    pub(crate) fn from_json(v: JsonVal) -> Result<Self, String> {
        let cells = v
            .into_obj()?
            .into_iter()
            .map(|(key, cell)| Ok((key, CellState::from_json(cell)?)))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ReplayState { cells })
    }
}

/// Serializes a [`ReplayState`] snapshot to canonical JSON text.
#[must_use]
pub fn state_to_json(state: &ReplayState) -> String {
    let mut out = String::new();
    json::write_into(&state.to_json(), &mut out);
    out
}

/// Parses a snapshot produced by [`state_to_json`].
///
/// # Errors
///
/// Returns a message describing the first malformed element.
pub fn state_from_json(input: &str) -> Result<ReplayState, String> {
    ReplayState::from_json(json::parse(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;

    fn record(seq: u64, t: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at: SimTime::from_secs(t), event }
    }

    #[test]
    fn occupancy_integrates_instance_seconds() {
        let mut cell = CellState::default();
        cell.fold(&record(
            0,
            0,
            TraceEvent::Launched {
                workload: 0,
                region: Region::ALL[0],
                spot: true,
                instance: cloud_compute::InstanceId::from_raw(1),
            },
        ));
        cell.fold(&record(
            1,
            100,
            TraceEvent::Launched {
                workload: 1,
                region: Region::ALL[1],
                spot: false,
                instance: cloud_compute::InstanceId::from_raw(2),
            },
        ));
        cell.fold(&record(
            2,
            160,
            TraceEvent::Completed {
                workload: 0,
                region: Region::ALL[0],
                instance: cloud_compute::InstanceId::from_raw(1),
                billed: 1.5,
            },
        ));
        assert_eq!(cell.occupancy.peak, 2);
        assert_eq!(cell.occupancy.running, 1);
        // 1 instance for 100 s, then 2 instances for 60 s.
        assert_eq!(cell.occupancy.instance_seconds, 100 + 120);
        assert!((cell.ledger.billed_total() - 1.5).abs() < 1e-12);
        assert_eq!(cell.ledger.regions[0].completions, 1);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut state = ReplayState::default();
        let cell = state.cell_mut("spotverse/s1");
        cell.fold(&record(
            0,
            86400,
            TraceEvent::RunStarted {
                strategy: "spotverse".to_owned(),
                seed: 7,
                workloads: 3,
                chaos: Some("region_flap".to_owned()),
                regime: Some("capacity_crunch".to_owned()),
            },
        ));
        cell.fold(&record(
            1,
            90000,
            TraceEvent::Breaker {
                region: Region::ALL[3],
                from: BreakerState::Closed,
                to: BreakerState::Open,
            },
        ));
        state.cell_mut("").fold(&record(
            0,
            0,
            TraceEvent::ShardDispatched { shard: 0, attempt: 1, cells: 9 },
        ));
        let text = state_to_json(&state);
        let back = state_from_json(&text).unwrap();
        assert_eq!(back, state);
        assert_eq!(state_to_json(&back), text);
    }

    #[test]
    fn window_excludes_records() {
        let w = TimeWindow {
            from: Some(SimTime::from_secs(10)),
            until: Some(SimTime::from_secs(20)),
        };
        assert!(!w.contains(SimTime::from_secs(9)));
        assert!(w.contains(SimTime::from_secs(10)));
        assert!(w.contains(SimTime::from_secs(19)));
        assert!(!w.contains(SimTime::from_secs(20)));
    }
}
