//! Distribution-level analytics over replayed view state.
//!
//! Everything here is derived from [`ReplayState`] alone — no live
//! simulation objects — so the same figures are available for any trace
//! file, golden or fresh. The text renderer is shared between the
//! `spotverse analyse` CLI and the golden-analytics snapshot tests, so
//! the committed snapshots gate the CLI output byte-for-byte.

use std::fmt::Write as _;

use super::json::{self, num_f64, num_u64, JsonVal};
use super::views::{CellState, ReplayState};

/// Five-number summary (nearest-rank percentiles) plus the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Nearest-rank p50.
    pub p50: f64,
    /// Nearest-rank p90.
    pub p90: f64,
    /// Nearest-rank p99.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Computes the summary over `values`. Returns `None` when empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let rank = |p: f64| {
            // Nearest-rank: smallest index i with (i+1)/n >= p.
            let n = sorted.len();
            let i = (p * n as f64).ceil() as usize;
            sorted[i.clamp(1, n) - 1]
        };
        Some(Percentiles {
            count: sorted.len(),
            min: sorted[0],
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }
}

/// Cost and makespan distributions for one strategy across cells.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyDistribution {
    /// Strategy name.
    pub strategy: String,
    /// Cells grouped here.
    pub cells: usize,
    /// Billed-cost summary ($).
    pub cost: Option<Percentiles>,
    /// Makespan summary (hours).
    pub makespan_hours: Option<Percentiles>,
}

/// Pairwise cost wins: `wins[a][b]` = seeds where strategy `a` billed
/// strictly less than strategy `b`.
#[derive(Debug, Clone, PartialEq)]
pub struct WinMatrix {
    /// Strategy names, row/column order.
    pub strategies: Vec<String>,
    /// `wins[a][b]` counts.
    pub wins: Vec<Vec<u64>>,
    /// Seeds with at least two strategies present.
    pub contested_seeds: usize,
}

fn cell_strategy(cell: &CellState) -> &str {
    cell.summary.strategy.as_deref().unwrap_or("?")
}

/// Groups cells by strategy and summarizes cost/makespan distributions.
/// Strategies appear in first-seen cell order. Cells with no
/// `run_started` record (e.g. the orchestrator's shard trace) carry no
/// strategy and are skipped.
#[must_use]
pub fn strategy_distributions(state: &ReplayState) -> Vec<StrategyDistribution> {
    let mut groups: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (_, cell) in &state.cells {
        if cell.summary.strategy.is_none() {
            continue;
        }
        let name = cell_strategy(cell);
        let idx = match groups.iter().position(|(n, _, _)| n == name) {
            Some(i) => i,
            None => {
                groups.push((name.to_owned(), Vec::new(), Vec::new()));
                groups.len() - 1
            }
        };
        groups[idx].1.push(cell.ledger.billed_total());
        if let Some(secs) = cell.summary.makespan_secs() {
            groups[idx].2.push(secs as f64 / 3600.0);
        }
    }
    groups
        .into_iter()
        .map(|(strategy, costs, makespans)| StrategyDistribution {
            strategy,
            cells: costs.len(),
            cost: Percentiles::of(&costs),
            makespan_hours: Percentiles::of(&makespans),
        })
        .collect()
}

/// Builds the pairwise cost win matrix across common seeds.
#[must_use]
pub fn win_matrix(state: &ReplayState) -> WinMatrix {
    let mut strategies: Vec<String> = Vec::new();
    // (seed, strategy index, billed) per cell that declared a seed.
    let mut samples: Vec<(u64, usize, f64)> = Vec::new();
    for (_, cell) in &state.cells {
        let Some(seed) = cell.summary.seed else { continue };
        let name = cell_strategy(cell);
        let idx = match strategies.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                strategies.push(name.to_owned());
                strategies.len() - 1
            }
        };
        samples.push((seed, idx, cell.ledger.billed_total()));
    }
    let n = strategies.len();
    let mut wins = vec![vec![0u64; n]; n];
    let mut seeds: Vec<u64> = samples.iter().map(|(s, _, _)| *s).collect();
    seeds.sort_unstable();
    seeds.dedup();
    let mut contested = 0usize;
    for seed in seeds {
        let here: Vec<&(u64, usize, f64)> =
            samples.iter().filter(|(s, _, _)| *s == seed).collect();
        if here.len() < 2 {
            continue;
        }
        contested += 1;
        for a in &here {
            for b in &here {
                if a.1 != b.1 && a.2 < b.2 {
                    wins[a.1][b.1] += 1;
                }
            }
        }
    }
    WinMatrix { strategies, wins, contested_seeds: contested }
}

fn fmt_money(v: f64) -> String {
    format!("{v:.2}")
}

fn fmt_pct(p: &Percentiles) -> String {
    format!(
        "n={} min={:.2} p50={:.2} p90={:.2} p99={:.2} max={:.2} mean={:.2}",
        p.count, p.min, p.p50, p.p90, p.p99, p.max, p.mean
    )
}

fn render_cell(out: &mut String, key: &str, cell: &CellState) {
    let name = if key.is_empty() { "(run)" } else { key };
    let _ = writeln!(out, "cell {name}");
    let s = &cell.summary;
    let strategy = s.strategy.as_deref().unwrap_or("-");
    let seed = s.seed.map_or_else(|| "-".to_owned(), |v| v.to_string());
    let chaos = s.chaos.as_deref().unwrap_or("-");
    // Regime is rendered only when the run declared one, so every
    // pre-regime golden analytics snapshot stays byte-identical.
    let regime = s
        .regime
        .as_deref()
        .map(|r| format!(" regime={r}"))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "  run: strategy={strategy} seed={seed} chaos={chaos}{regime} workloads={} completed={} aborted={}",
        s.workloads.map_or_else(|| "-".to_owned(), |v| v.to_string()),
        s.completed,
        s.aborted,
    );
    let makespan = s.makespan_secs().map_or_else(
        || "-".to_owned(),
        |secs| format!("{secs} s ({:.2} h)", secs as f64 / 3600.0),
    );
    let _ = writeln!(
        out,
        "  outcome: billed=${} makespan={makespan} decisions={} migrations={}",
        fmt_money(cell.ledger.billed_total()),
        s.decisions,
        s.migrations,
    );
    let occ = &cell.occupancy;
    let _ = writeln!(
        out,
        "  occupancy: peak={} arrived={} late={} expired={} deferred={} instance-hours={:.2}",
        occ.peak,
        occ.arrived,
        occ.late_arrivals,
        occ.expired,
        occ.deferred,
        occ.instance_seconds as f64 / 3600.0,
    );
    for (region, ledger) in cell.ledger.active() {
        let _ = writeln!(
            out,
            "  region {:<14} spot={} od={} intr={} done={} exp={} billed=${}",
            region.name(),
            ledger.spot_launches,
            ledger.on_demand_launches,
            ledger.interruptions,
            ledger.completions,
            ledger.expirations,
            fmt_money(ledger.billed),
        );
    }
    if cell.ledger.unattributed_billed != 0.0 {
        let _ = writeln!(
            out,
            "  region (unattributed) billed=${}",
            fmt_money(cell.ledger.unattributed_billed)
        );
    }
    let br = &cell.breakers;
    if !br.transitions.is_empty() {
        let _ = writeln!(
            out,
            "  breakers: transitions={} trips={}",
            br.transitions.len(),
            br.total_trips()
        );
        for (i, trips) in br.trips.iter().enumerate() {
            if *trips > 0 {
                let _ = writeln!(
                    out,
                    "    {:<14} trips={trips}",
                    cloud_market::Region::ALL[i].name()
                );
            }
        }
    }
    let cp = &cell.checkpoints;
    if cp.saves + cp.restores > 0 {
        let _ = writeln!(
            out,
            "  checkpoints: saves={} recorded={} torn={} restores={} scratch={} corrupt-dropped={}",
            cp.saves, cp.recorded, cp.torn, cp.restores, cp.scratch_restores, cp.corrupt_dropped,
        );
    }
    let sh = &cell.shards;
    if sh.dispatches > 0 {
        let _ = writeln!(
            out,
            "  shards: dispatches={} cells={} lease-expiries={} redrives={} dead-lettered={} completions={} duplicates={}",
            sh.dispatches,
            sh.cells_dispatched,
            sh.lease_expiries,
            sh.redrives,
            sh.dead_lettered,
            sh.completions,
            sh.duplicates,
        );
    }
    let rs = &cell.resilience;
    if rs.collection_failures + rs.stale_serves + rs.degraded_decisions + rs.chaos_faults > 0 {
        let _ = writeln!(
            out,
            "  resilience: collection-failures={} stale-serves={} degraded-decisions={} degraded-hours={:.2} chaos-faults={}",
            rs.collection_failures,
            rs.stale_serves,
            rs.degraded_decisions,
            rs.degraded_seconds as f64 / 3600.0,
            rs.chaos_faults,
        );
    }
    if let Some(dropped) = cell.dropped {
        let _ = writeln!(out, "  truncated: dropped={dropped}");
    }
    let _ = writeln!(out, "  events: {}", cell.events);
}

/// Renders the full analysis as deterministic text: per-cell views, then
/// per-strategy distributions and the win matrix when more than one cell
/// is present.
#[must_use]
pub fn render_analysis(state: &ReplayState) -> String {
    let mut out = String::new();
    for (key, cell) in &state.cells {
        render_cell(&mut out, key, cell);
    }
    if state.cells.len() > 1 {
        let dists = strategy_distributions(state);
        let _ = writeln!(out, "distributions ({} cells)", state.cells.len());
        for d in &dists {
            let _ = writeln!(out, "  {} ({} cells)", d.strategy, d.cells);
            if let Some(cost) = &d.cost {
                let _ = writeln!(out, "    cost $: {}", fmt_pct(cost));
            }
            if let Some(mk) = &d.makespan_hours {
                let _ = writeln!(out, "    makespan h: {}", fmt_pct(mk));
            }
        }
        let wm = win_matrix(state);
        if wm.strategies.len() > 1 && wm.contested_seeds > 0 {
            let _ = writeln!(
                out,
                "win matrix (cheaper-than counts over {} contested seeds)",
                wm.contested_seeds
            );
            let width = wm.strategies.iter().map(|s| s.len()).max().unwrap_or(0).max(4);
            let _ = write!(out, "  {:<width$}", "");
            for s in &wm.strategies {
                let _ = write!(out, " {s:>width$}");
            }
            out.push('\n');
            for (i, row) in wm.wins.iter().enumerate() {
                let _ = write!(out, "  {:<width$}", wm.strategies[i]);
                for (j, w) in row.iter().enumerate() {
                    if i == j {
                        let _ = write!(out, " {:>width$}", "-");
                    } else {
                        let _ = write!(out, " {w:>width$}");
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

fn pct_json(p: &Percentiles) -> JsonVal {
    JsonVal::Obj(vec![
        ("count".to_owned(), num_u64(p.count as u64)),
        ("min".to_owned(), num_f64(p.min)),
        ("p50".to_owned(), num_f64(p.p50)),
        ("p90".to_owned(), num_f64(p.p90)),
        ("p99".to_owned(), num_f64(p.p99)),
        ("max".to_owned(), num_f64(p.max)),
        ("mean".to_owned(), num_f64(p.mean)),
    ])
}

/// Renders the analysis as one canonical JSON object (machine-readable
/// variant of [`render_analysis`]).
#[must_use]
pub fn render_analysis_json(state: &ReplayState) -> String {
    let cells: Vec<(String, JsonVal)> = state
        .cells
        .iter()
        .map(|(key, cell)| {
            let mut obj = cell.to_json().into_obj().expect("cell snapshot is an object");
            obj.push(("billed_total".to_owned(), num_f64(cell.ledger.billed_total())));
            if let Some(secs) = cell.summary.makespan_secs() {
                obj.push(("makespan_s".to_owned(), num_u64(secs)));
            }
            (key.clone(), JsonVal::Obj(obj))
        })
        .collect();
    let dists: Vec<JsonVal> = strategy_distributions(state)
        .iter()
        .map(|d| {
            let mut obj = vec![
                ("strategy".to_owned(), JsonVal::Str(d.strategy.clone())),
                ("cells".to_owned(), num_u64(d.cells as u64)),
            ];
            if let Some(cost) = &d.cost {
                obj.push(("cost".to_owned(), pct_json(cost)));
            }
            if let Some(mk) = &d.makespan_hours {
                obj.push(("makespan_hours".to_owned(), pct_json(mk)));
            }
            JsonVal::Obj(obj)
        })
        .collect();
    let wm = win_matrix(state);
    let root = JsonVal::Obj(vec![
        ("cells".to_owned(), JsonVal::Obj(cells)),
        ("distributions".to_owned(), JsonVal::Arr(dists)),
        (
            "win_matrix".to_owned(),
            JsonVal::Obj(vec![
                (
                    "strategies".to_owned(),
                    JsonVal::Arr(wm.strategies.iter().cloned().map(JsonVal::Str).collect()),
                ),
                (
                    "wins".to_owned(),
                    JsonVal::Arr(
                        wm.wins
                            .iter()
                            .map(|row| JsonVal::Arr(row.iter().map(|w| num_u64(*w)).collect()))
                            .collect(),
                    ),
                ),
                ("contested_seeds".to_owned(), num_u64(wm.contested_seeds as u64)),
            ]),
        ),
    ]);
    let mut out = String::new();
    json::write_into(&root, &mut out);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let p = Percentiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]).unwrap();
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 5.0);
        assert_eq!(p.p90, 9.0);
        assert_eq!(p.p99, 10.0);
        assert_eq!(p.max, 10.0);
        assert!((p.mean - 5.5).abs() < 1e-12);
        assert!(Percentiles::of(&[]).is_none());
        let single = Percentiles::of(&[3.5]).unwrap();
        assert_eq!(single.p50, 3.5);
        assert_eq!(single.p99, 3.5);
    }

    #[test]
    fn win_matrix_counts_cheaper_seeds() {
        let mut state = ReplayState::default();
        for (key, strategy, seed, billed) in [
            ("a/s1", "a", 1u64, 10.0),
            ("b/s1", "b", 1, 12.0),
            ("a/s2", "a", 2, 9.0),
            ("b/s2", "b", 2, 8.0),
            ("a/s3", "a", 3, 1.0), // uncontested
        ] {
            let cell = state.cell_mut(key);
            cell.summary.strategy = Some(strategy.to_owned());
            cell.summary.seed = Some(seed);
            cell.ledger.unattributed_billed = billed;
        }
        let wm = win_matrix(&state);
        assert_eq!(wm.strategies, vec!["a", "b"]);
        assert_eq!(wm.contested_seeds, 2);
        assert_eq!(wm.wins[0][1], 1);
        assert_eq!(wm.wins[1][0], 1);
    }
}
