//! Read-side parsing of the canonical trace JSONL.
//!
//! [`parse_trace_line`] inverts `trace::append_record_json` exactly: every
//! event variant, every optional field, the merged-sweep `cell` prefix,
//! and the truncation marker line all decode back into typed values, so
//! `parse → re-serialize` is byte-identical for canonical input. Corrupt
//! input — truncated lines, bad JSON, unknown events or labels, wrong
//! field types, unexpected fields — fails with a structured error naming
//! the 1-based line number instead of panicking.

use std::fmt;
use std::str::FromStr;

use cloud_compute::InstanceId;
use cloud_market::Region;
use sim_kernel::{SimDuration, SimTime};

use crate::health::BreakerState;
use crate::optimizer::{CandidateOutcome, CandidateVerdict, Placement};
use crate::trace::{
    append_record_json, append_truncation_json, DecisionKind, TraceEvent, TraceRecord,
};

use super::json::{self, Fields, JsonVal};

/// A structured parse failure: which line, and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the JSONL document.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// One parsed JSONL line: a trace record or the truncation marker, each
/// with the optional merged-sweep cell label.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// A regular record.
    Record {
        /// The `"cell"` prefix of merged sweep traces, if present.
        cell: Option<String>,
        /// The typed record.
        record: TraceRecord,
    },
    /// The `{"truncated":true,...}` marker a capacity-capped trace ends
    /// with.
    Truncated {
        /// The `"cell"` prefix, if present.
        cell: Option<String>,
        /// Records dropped once the ring buffer filled.
        dropped: u64,
    },
}

impl TraceLine {
    /// The cell label, if any.
    pub fn cell(&self) -> Option<&str> {
        match self {
            TraceLine::Record { cell, .. } | TraceLine::Truncated { cell, .. } => cell.as_deref(),
        }
    }
}

/// Parses one canonical JSONL line. The error is a bare message; callers
/// that know the line number wrap it in [`TraceParseError`].
pub fn parse_trace_line(line: &str) -> Result<TraceLine, String> {
    let obj = json::parse(line)?.into_obj()?;
    let mut fields = Fields::new(obj);
    let cell = match fields.take("cell") {
        Some(v) => Some(v.into_str()?),
        None => None,
    };
    if let Some(truncated) = fields.take("truncated") {
        if !truncated.as_bool()? {
            return Err("`truncated` must be true".to_owned());
        }
        let dropped = fields.require("dropped")?.as_u64()?;
        fields.finish()?;
        return Ok(TraceLine::Truncated { cell, dropped });
    }
    let seq = fields.require("seq")?.as_u64()?;
    let at = SimTime::from_secs(fields.require("t")?.as_u64()?);
    let label = fields.require("event")?.into_str()?;
    let event = decode_event(&label, &mut fields)?;
    fields.finish()?;
    Ok(TraceLine::Record { cell, record: TraceRecord { seq, at, event } })
}

/// Parses a whole canonical JSONL document.
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the first offending line.
pub fn parse_trace_jsonl(input: &str) -> Result<Vec<TraceLine>, TraceParseError> {
    input
        .lines()
        .enumerate()
        .map(|(i, line)| {
            parse_trace_line(line).map_err(|message| TraceParseError { line: i + 1, message })
        })
        .collect()
}

/// Re-serializes parsed lines to canonical JSONL (each line
/// newline-terminated). `trace_lines_to_jsonl(parse_trace_jsonl(doc))`
/// is byte-identical to `doc` for canonical input.
#[must_use]
pub fn trace_lines_to_jsonl(lines: &[TraceLine]) -> String {
    let mut out = String::new();
    for line in lines {
        match line {
            TraceLine::Record { cell, record } => {
                append_record_json(&mut out, cell.as_deref(), record);
            }
            TraceLine::Truncated { cell, dropped } => {
                append_truncation_json(&mut out, cell.as_deref(), *dropped);
            }
        }
        out.push('\n');
    }
    out
}

fn decode_region(v: JsonVal) -> Result<Region, String> {
    let name = v.into_str()?;
    Region::from_str(&name).map_err(|_| format!("unknown region `{name}`"))
}

fn decode_opt_region(fields: &mut Fields, key: &str) -> Result<Option<Region>, String> {
    fields.take(key).map(decode_region).transpose()
}

fn decode_workload(fields: &mut Fields) -> Result<usize, String> {
    fields.require("workload")?.as_usize()
}

fn decode_instance(v: JsonVal) -> Result<InstanceId, String> {
    let s = v.into_str()?;
    let hex = s
        .strip_prefix("i-")
        .ok_or_else(|| format!("instance id `{s}` does not start with `i-`"))?;
    u64::from_str_radix(hex, 16)
        .map(InstanceId::from_raw)
        .map_err(|_| format!("instance id `{s}` is not hex"))
}

fn decode_breaker_state(v: JsonVal) -> Result<BreakerState, String> {
    match v.into_str()?.as_str() {
        "closed" => Ok(BreakerState::Closed),
        "open" => Ok(BreakerState::Open),
        "half-open" => Ok(BreakerState::HalfOpen),
        other => Err(format!("unknown breaker state `{other}`")),
    }
}

fn decode_placement(v: JsonVal) -> Result<Placement, String> {
    let s = v.into_str()?;
    if let Some(region) = s.strip_prefix("spot:") {
        return decode_region(JsonVal::Str(region.to_owned())).map(Placement::Spot);
    }
    if let Some(region) = s.strip_prefix("od:") {
        return decode_region(JsonVal::Str(region.to_owned())).map(Placement::OnDemand);
    }
    Err(format!("placement `{s}` is neither `spot:<region>` nor `od:<region>`"))
}

fn decode_candidate_outcome(v: JsonVal) -> Result<CandidateOutcome, String> {
    let s = v.into_str()?;
    if let Some(rank) = s.strip_prefix("selected:") {
        let rank = rank
            .parse::<usize>()
            .map_err(|_| format!("selected rank `{rank}` is not an integer"))?;
        return Ok(CandidateOutcome::Selected { rank });
    }
    match s.as_str() {
        "quarantined" => Ok(CandidateOutcome::Quarantined),
        "not-preferred" => Ok(CandidateOutcome::NotPreferred),
        "below-threshold" => Ok(CandidateOutcome::BelowThreshold),
        "over-cap" => Ok(CandidateOutcome::OverCap),
        "interrupted-here" => Ok(CandidateOutcome::InterruptedHere),
        other => Err(format!("unknown candidate outcome `{other}`")),
    }
}

fn decode_candidates(v: JsonVal) -> Result<Vec<CandidateVerdict>, String> {
    v.into_arr()?
        .into_iter()
        .map(|item| {
            let mut fields = Fields::new(item.into_obj()?);
            let region = decode_region(fields.require("region")?)?;
            let combined = fields.require("combined")?.as_u64()?;
            let combined = u8::try_from(combined)
                .map_err(|_| format!("combined score {combined} exceeds u8"))?;
            let spot_price = fields.require("price")?.as_f64()?;
            let outcome = decode_candidate_outcome(fields.require("outcome")?)?;
            fields.finish()?;
            Ok(CandidateVerdict { region, combined, spot_price, outcome })
        })
        .collect()
}

/// The four fault labels the controller emits today. Parsing maps back to
/// the `&'static str` the event carries; an unknown label is a corrupt
/// (or newer-schema) trace.
const CHAOS_FAULT_KINDS: [&str; 4] =
    ["spot_blackout", "chaos_interruption", "notice_shortened", "checkpoint_corruption"];

fn decode_chaos_kind(v: JsonVal) -> Result<&'static str, String> {
    let s = v.into_str()?;
    CHAOS_FAULT_KINDS
        .iter()
        .find(|k| **k == s)
        .copied()
        .ok_or_else(|| format!("unknown chaos fault kind `{s}`"))
}

fn decode_priority_label(v: JsonVal) -> Result<&'static str, String> {
    let s = v.into_str()?;
    ["batch", "standard", "interactive"]
        .iter()
        .find(|p| **p == s)
        .copied()
        .ok_or_else(|| format!("unknown priority `{s}`"))
}

fn decode_duration_secs(fields: &mut Fields, key: &str) -> Result<SimDuration, String> {
    Ok(SimDuration::from_secs(fields.require(key)?.as_u64()?))
}

fn decode_event(label: &str, fields: &mut Fields) -> Result<TraceEvent, String> {
    match label {
        "run_started" => Ok(TraceEvent::RunStarted {
            strategy: fields.require("strategy")?.into_str()?,
            seed: fields.require("seed")?.as_u64()?,
            workloads: fields.require("workloads")?.as_usize()?,
            chaos: fields.take("chaos").map(JsonVal::into_str).transpose()?,
            regime: fields.take("regime").map(JsonVal::into_str).transpose()?,
        }),
        "collection_failed" => Ok(TraceEvent::CollectionFailed {
            retryable: fields.require("retryable")?.as_bool()?,
        }),
        "stale_serve" => Ok(TraceEvent::StaleServe { age: decode_duration_secs(fields, "age_s")? }),
        "degraded_decision" => {
            Ok(TraceEvent::DegradedDecision { age: decode_duration_secs(fields, "age_s")? })
        }
        "degraded_interval" => Ok(TraceEvent::DegradedInterval {
            duration: decode_duration_secs(fields, "duration_s")?,
        }),
        "decision" => {
            let kind = match fields.require("kind")?.into_str()?.as_str() {
                "initial" => DecisionKind::Initial,
                "migration" => DecisionKind::Migration,
                other => return Err(format!("unknown decision kind `{other}`")),
            };
            let workload = fields.take("workload").map(|v| v.as_usize()).transpose()?;
            let previous = decode_opt_region(fields, "previous")?;
            let degraded = fields.require("degraded")?.as_bool()?;
            let quarantined = fields
                .require("quarantined")?
                .into_arr()?
                .into_iter()
                .map(decode_region)
                .collect::<Result<Vec<_>, _>>()?;
            let candidates = fields.take("candidates").map(decode_candidates).transpose()?;
            let placements = fields
                .require("placements")?
                .into_arr()?
                .into_iter()
                .map(decode_placement)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TraceEvent::Decision {
                kind,
                workload,
                previous,
                degraded,
                quarantined,
                candidates,
                placements,
            })
        }
        "launched" => Ok(TraceEvent::Launched {
            workload: decode_workload(fields)?,
            region: decode_region(fields.require("region")?)?,
            spot: fields.require("spot")?.as_bool()?,
            instance: decode_instance(fields.require("instance")?)?,
        }),
        "request_open" => Ok(TraceEvent::RequestOpen {
            workload: decode_workload(fields)?,
            region: decode_region(fields.require("region")?)?,
            blackout: fields.require("blackout")?.as_bool()?,
        }),
        "request_failed" => Ok(TraceEvent::RequestFailed {
            workload: decode_workload(fields)?,
            region: decode_region(fields.require("region")?)?,
        }),
        "interrupted" => Ok(TraceEvent::Interrupted {
            workload: decode_workload(fields)?,
            region: decode_region(fields.require("region")?)?,
            instance: decode_instance(fields.require("instance")?)?,
            billed: fields.require("billed")?.as_f64()?,
        }),
        "completed" => Ok(TraceEvent::Completed {
            workload: decode_workload(fields)?,
            region: decode_region(fields.require("region")?)?,
            instance: decode_instance(fields.require("instance")?)?,
            billed: fields.require("billed")?.as_f64()?,
        }),
        "checkpoint_save" => Ok(TraceEvent::CheckpointSave {
            workload: decode_workload(fields)?,
            generation: fields.require("generation")?.as_u64()?,
            units: fields.require("units")?.as_usize()?,
            recorded: fields.require("recorded")?.as_bool()?,
        }),
        "checkpoint_torn" => Ok(TraceEvent::CheckpointTorn {
            workload: decode_workload(fields)?,
            generation: fields.require("generation")?.as_u64()?,
        }),
        "checkpoint_restore" => Ok(TraceEvent::CheckpointRestore {
            workload: decode_workload(fields)?,
            units: fields.require("units")?.as_usize()?,
            corrupt_dropped: fields.require("corrupt_dropped")?.as_u64()?,
            scratch: fields.require("scratch")?.as_bool()?,
        }),
        "breaker" => Ok(TraceEvent::Breaker {
            region: decode_region(fields.require("region")?)?,
            from: decode_breaker_state(fields.require("from")?)?,
            to: decode_breaker_state(fields.require("to")?)?,
        }),
        "chaos_fault" => Ok(TraceEvent::ChaosFault {
            kind: decode_chaos_kind(fields.require("kind")?)?,
            region: decode_opt_region(fields, "region")?,
        }),
        "workloads_arrived" => Ok(TraceEvent::WorkloadsArrived {
            batch: fields
                .require("batch")?
                .into_arr()?
                .into_iter()
                .map(|v| v.as_usize())
                .collect::<Result<Vec<_>, _>>()?,
            tenants: match fields.take("tenant") {
                None => Vec::new(),
                Some(v) => v
                    .into_arr()?
                    .into_iter()
                    .map(JsonVal::into_str)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            priorities: match fields.take("priority") {
                None => Vec::new(),
                Some(v) => v
                    .into_arr()?
                    .into_iter()
                    .map(decode_priority_label)
                    .collect::<Result<Vec<_>, _>>()?,
            },
        }),
        "capacity_deferred" => Ok(TraceEvent::CapacityDeferred {
            workload: decode_workload(fields)?,
            region: decode_region(fields.require("region")?)?,
        }),
        "workload_expired" => Ok(TraceEvent::WorkloadExpired {
            workload: decode_workload(fields)?,
            region: decode_opt_region(fields, "region")?,
            billed: fields.take("billed").map(|v| v.as_f64()).transpose()?,
        }),
        "shard_dispatched" => Ok(TraceEvent::ShardDispatched {
            shard: fields.require("shard")?.as_usize()?,
            attempt: fields.require("attempt")?.as_u64()? as u32,
            cells: fields.require("cells")?.as_usize()?,
        }),
        "lease_expired" => Ok(TraceEvent::LeaseExpired {
            shard: fields.require("shard")?.as_usize()?,
            attempt: fields.require("attempt")?.as_u64()? as u32,
        }),
        "shard_redriven" => Ok(TraceEvent::ShardRedriven {
            shard: fields.require("shard")?.as_usize()?,
            attempt: fields.require("attempt")?.as_u64()? as u32,
            backoff_s: fields.require("backoff_s")?.as_u64()?,
        }),
        "shard_dead_lettered" => Ok(TraceEvent::ShardDeadLettered {
            shard: fields.require("shard")?.as_usize()?,
            attempts: fields.require("attempts")?.as_u64()? as u32,
        }),
        "shard_completed" => Ok(TraceEvent::ShardCompleted {
            shard: fields.require("shard")?.as_usize()?,
            attempt: fields.require("attempt")?.as_u64()? as u32,
            duplicate: fields.require("duplicate")?.as_bool()?,
        }),
        "run_ended" => Ok(TraceEvent::RunEnded {
            completed: fields.require("completed")?.as_usize()?,
            aborted: fields.require("aborted")?.as_bool()?,
        }),
        other => Err(format!("unknown event `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_round_trips() {
        let line = "{\"cell\":\"spotverse/s7\",\"seq\":3,\"t\":86400,\"event\":\"launched\",\
                    \"workload\":0,\"region\":\"ap-northeast-3\",\"spot\":true,\
                    \"instance\":\"i-00000001\"}";
        let parsed = parse_trace_line(line).unwrap();
        assert_eq!(parsed.cell(), Some("spotverse/s7"));
        assert_eq!(trace_lines_to_jsonl(&[parsed]), format!("{line}\n"));
    }

    #[test]
    fn truncation_marker_round_trips() {
        let line = "{\"truncated\":true,\"dropped\":12}";
        let parsed = parse_trace_line(line).unwrap();
        assert_eq!(parsed, TraceLine::Truncated { cell: None, dropped: 12 });
        assert_eq!(trace_lines_to_jsonl(std::slice::from_ref(&parsed)), format!("{line}\n"));
    }

    #[test]
    fn corrupt_lines_name_the_line_number() {
        let doc = "{\"seq\":0,\"t\":0,\"event\":\"run_ended\",\"completed\":1,\"aborted\":false}\n\
                   {\"seq\":1,\"t\":5,\"event\":\"laun";
        let err = parse_trace_jsonl(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("trace line 2:"), "{err}");
    }

    #[test]
    fn unexpected_fields_and_labels_are_rejected() {
        assert!(parse_trace_line(
            "{\"seq\":0,\"t\":0,\"event\":\"run_ended\",\"completed\":1,\"aborted\":false,\"x\":1}"
        )
        .unwrap_err()
        .contains("unexpected field `x`"));
        assert!(parse_trace_line("{\"seq\":0,\"t\":0,\"event\":\"warp\"}")
            .unwrap_err()
            .contains("unknown event"));
        assert!(parse_trace_line(
            "{\"seq\":0,\"t\":0,\"event\":\"breaker\",\"region\":\"mars-1\",\"from\":\"closed\",\"to\":\"open\"}"
        )
        .unwrap_err()
        .contains("unknown region"));
        assert!(parse_trace_line("{\"seq\":0,\"t\":0,\"event\":\"run_ended\",\"completed\":1}")
            .unwrap_err()
            .contains("missing field `aborted`"));
    }
}
