//! A lossless JSON value model for the replay read side.
//!
//! The canonical trace JSONL is written by hand (`trace.rs`) with fixed
//! key order and Rust's shortest-round-trip float formatting. To replay a
//! document and re-serialize it byte-identically, the parser must lose
//! nothing: objects keep insertion order (no sorting) and numbers keep
//! their raw source text so `2`, `2.0`, and a 20-significant-digit price
//! all survive exactly. This sets it apart from the pretty-printing JSON
//! model in `galaxy-flow`, which holds all numbers as `f64` and sorts
//! object keys.

use std::fmt::Write as _;

use crate::trace::push_json_str;

/// A parsed JSON value with nothing normalized away.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as its raw source text.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonVal>),
    /// An object in source key order.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            JsonVal::Null => "null",
            JsonVal::Bool(_) => "bool",
            JsonVal::Num(_) => "number",
            JsonVal::Str(_) => "string",
            JsonVal::Arr(_) => "array",
            JsonVal::Obj(_) => "object",
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            JsonVal::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("`{raw}` is not an unsigned integer")),
            other => Err(format!("expected an integer, found {}", other.type_name())),
        }
    }

    pub(crate) fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|n| n as usize)
    }

    pub(crate) fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonVal::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("`{raw}` is not a number")),
            other => Err(format!("expected a number, found {}", other.type_name())),
        }
    }

    pub(crate) fn as_bool(&self) -> Result<bool, String> {
        match self {
            JsonVal::Bool(b) => Ok(*b),
            other => Err(format!("expected a bool, found {}", other.type_name())),
        }
    }

    pub(crate) fn into_str(self) -> Result<String, String> {
        match self {
            JsonVal::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {}", other.type_name())),
        }
    }

    pub(crate) fn into_arr(self) -> Result<Vec<JsonVal>, String> {
        match self {
            JsonVal::Arr(items) => Ok(items),
            other => Err(format!("expected an array, found {}", other.type_name())),
        }
    }

    pub(crate) fn into_obj(self) -> Result<Vec<(String, JsonVal)>, String> {
        match self {
            JsonVal::Obj(entries) => Ok(entries),
            other => Err(format!("expected an object, found {}", other.type_name())),
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub(crate) fn parse(input: &str) -> Result<JsonVal, String> {
    let mut p = Scanner { bytes: input.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, String> {
        Err(format!("{} (byte {})", message.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonVal::Bool(true)),
            Some(b'f') => self.keyword("false", JsonVal::Bool(false)),
            Some(b'n') => self.keyword("null", JsonVal::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte `{}`", b as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonVal) -> Result<JsonVal, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn number(&mut self) -> Result<JsonVal, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        }) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        match raw.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonVal::Num(raw.to_owned())),
            _ => self.err(format!("invalid number `{raw}`")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "non-ASCII in \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let ch = rest.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonVal::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<JsonVal, String> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, JsonVal)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonVal::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return self.err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonVal::Obj(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Writes a value back out canonically: insertion-order keys, raw number
/// text verbatim, the same string escapes the trace writer uses. For a
/// value built by [`parse`] from canonical input, `write ∘ parse` is the
/// identity.
pub(crate) fn write_into(value: &JsonVal, out: &mut String) {
    match value {
        JsonVal::Null => out.push_str("null"),
        JsonVal::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        JsonVal::Num(raw) => out.push_str(raw),
        JsonVal::Str(s) => push_json_str(out, s),
        JsonVal::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        JsonVal::Obj(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(out, key);
                out.push(':');
                write_into(item, out);
            }
            out.push('}');
        }
    }
}

/// Convenience helpers for building snapshot documents.
pub(crate) fn num_u64(n: u64) -> JsonVal {
    JsonVal::Num(n.to_string())
}

pub(crate) fn num_f64(n: f64) -> JsonVal {
    JsonVal::Num(format!("{n}"))
}

/// Field cursor over a parsed object: every field must be taken exactly
/// once, so corrupt or unexpected fields fail loudly instead of being
/// silently ignored.
pub(crate) struct Fields {
    entries: Vec<(String, Option<JsonVal>)>,
}

impl Fields {
    pub(crate) fn new(obj: Vec<(String, JsonVal)>) -> Self {
        Fields { entries: obj.into_iter().map(|(k, v)| (k, Some(v))).collect() }
    }

    /// Takes an optional field.
    pub(crate) fn take(&mut self, key: &str) -> Option<JsonVal> {
        self.entries
            .iter_mut()
            .find(|(k, v)| k == key && v.is_some())
            .and_then(|(_, v)| v.take())
    }

    /// Takes a required field.
    pub(crate) fn require(&mut self, key: &str) -> Result<JsonVal, String> {
        self.take(key).ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Rejects any field not taken by the decoder.
    pub(crate) fn finish(self) -> Result<(), String> {
        match self.entries.iter().find(|(_, v)| v.is_some()) {
            Some((k, _)) => Err(format!("unexpected field `{k}`")),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_number_text_survives() {
        for raw in ["2", "2.5", "0.05460761339122153", "-3", "1e3"] {
            let doc = format!("{{\"x\":{raw}}}");
            let parsed = parse(&doc).unwrap();
            let mut out = String::new();
            write_into(&parsed, &mut out);
            assert_eq!(out, doc, "raw number `{raw}` must round-trip byte-identically");
        }
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = "{\"z\":1,\"a\":2,\"m\":[true,null]}";
        let mut out = String::new();
        write_into(&parse(doc).unwrap(), &mut out);
        assert_eq!(out, doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers rejected");
        assert!(parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys rejected");
    }

    #[test]
    fn fields_cursor_is_exhaustive() {
        let obj = parse("{\"a\":1,\"b\":\"x\"}").unwrap().into_obj().unwrap();
        let mut fields = Fields::new(obj.clone());
        assert_eq!(fields.require("a").unwrap().as_u64().unwrap(), 1);
        assert!(fields.finish().unwrap_err().contains("`b`"));
        let mut fields = Fields::new(obj);
        fields.require("a").unwrap();
        assert_eq!(fields.take("b").unwrap().into_str().unwrap(), "x");
        assert!(fields.take("b").is_none(), "fields are taken at most once");
        fields.finish().unwrap();
    }
}
