//! Incremental replay cursor.
//!
//! [`ReplayCursor`] consumes JSONL text in arbitrary chunks — lines may
//! be split anywhere, including mid-escape — buffers the trailing
//! partial line, and folds each completed line into a [`ReplayState`].
//! Because every view is a pure fold, the final state is identical for
//! any chunking of the same document, and a cursor serialized mid-stream
//! with [`ReplayCursor::snapshot`] resumes via [`ReplayCursor::resume`]
//! to the same final state as an uninterrupted pass.

use sim_kernel::SimTime;

use super::json::{self, Fields, JsonVal};
use super::parse::{parse_trace_line, TraceParseError};
use super::views::{ReplayState, TimeWindow};

/// Snapshot format version; bumped when the layout changes.
const SNAPSHOT_VERSION: u64 = 1;

/// An incremental, resumable trace replayer.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCursor {
    window: TimeWindow,
    /// Cell key assigned to records with no `"cell"` prefix (used by the
    /// CLI to keep multi-file inputs apart). `None` maps them to `""`.
    default_cell: Option<String>,
    /// Trailing bytes of an incomplete line from the previous chunk.
    partial: String,
    /// Lines fully consumed so far (1-based numbering of the *next* line
    /// is `consumed + 1`).
    consumed: u64,
    state: ReplayState,
}

impl Default for ReplayCursor {
    fn default() -> Self {
        ReplayCursor::new(TimeWindow::ALL)
    }
}

impl ReplayCursor {
    /// A fresh cursor folding records inside `window`.
    #[must_use]
    pub fn new(window: TimeWindow) -> Self {
        ReplayCursor {
            window,
            default_cell: None,
            partial: String::new(),
            consumed: 0,
            state: ReplayState::default(),
        }
    }

    /// Sets the cell key used for records with no `"cell"` prefix.
    pub fn set_default_cell(&mut self, cell: Option<String>) {
        self.default_cell = cell;
    }

    /// Lines fully consumed so far.
    #[must_use]
    pub fn lines_consumed(&self) -> u64 {
        self.consumed
    }

    /// The state folded so far (excluding any buffered partial line).
    #[must_use]
    pub fn state(&self) -> &ReplayState {
        &self.state
    }

    fn consume_line(&mut self, line: &str) -> Result<(), TraceParseError> {
        self.consumed += 1;
        if line.is_empty() {
            return Ok(());
        }
        let parsed = parse_trace_line(line).map_err(|message| TraceParseError {
            line: usize::try_from(self.consumed).unwrap_or(usize::MAX),
            message,
        })?;
        match (&self.default_cell, parsed.cell()) {
            (Some(default), None) => {
                let mut relabelled = parsed;
                match &mut relabelled {
                    super::parse::TraceLine::Record { cell, .. }
                    | super::parse::TraceLine::Truncated { cell, .. } => {
                        *cell = Some(default.clone());
                    }
                }
                self.state.fold_line(&relabelled, self.window);
            }
            _ => self.state.fold_line(&parsed, self.window),
        }
        Ok(())
    }

    /// Feeds one chunk of JSONL text. Complete lines are folded
    /// immediately; a trailing unterminated line is buffered for the
    /// next chunk (or [`ReplayCursor::finish`]).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line, numbered across all chunks fed
    /// so far. The cursor is left positioned after the bad line.
    pub fn feed(&mut self, chunk: &str) -> Result<(), TraceParseError> {
        let mut rest = chunk;
        while let Some(nl) = rest.find('\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            if self.partial.is_empty() {
                self.consume_line(head)?;
            } else {
                let mut line = std::mem::take(&mut self.partial);
                line.push_str(head);
                self.consume_line(&line)?;
            }
        }
        self.partial.push_str(rest);
        Ok(())
    }

    /// Flushes a buffered final line without a trailing newline and
    /// returns the finished state.
    ///
    /// # Errors
    ///
    /// Returns the parse failure of the flushed line, if any.
    pub fn finish(mut self) -> Result<ReplayState, TraceParseError> {
        if !self.partial.is_empty() {
            let line = std::mem::take(&mut self.partial);
            self.consume_line(&line)?;
        }
        Ok(self.state)
    }

    /// Serializes the cursor — window, position, buffered partial line,
    /// and all folded view state — to canonical JSON text.
    #[must_use]
    pub fn snapshot(&self) -> String {
        let mut obj = vec![
            ("version".to_owned(), json::num_u64(SNAPSHOT_VERSION)),
            ("consumed".to_owned(), json::num_u64(self.consumed)),
            ("partial".to_owned(), JsonVal::Str(self.partial.clone())),
        ];
        if let Some(from) = self.window.from {
            obj.push(("from".to_owned(), json::num_u64(from.as_secs())));
        }
        if let Some(until) = self.window.until {
            obj.push(("until".to_owned(), json::num_u64(until.as_secs())));
        }
        if let Some(cell) = &self.default_cell {
            obj.push(("default_cell".to_owned(), JsonVal::Str(cell.clone())));
        }
        obj.push(("cells".to_owned(), self.state.to_json()));
        let mut out = String::new();
        json::write_into(&JsonVal::Obj(obj), &mut out);
        out
    }

    /// Rebuilds a cursor from a [`ReplayCursor::snapshot`] string.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed element (including a
    /// version mismatch).
    pub fn resume(snapshot: &str) -> Result<Self, String> {
        let mut f = Fields::new(json::parse(snapshot)?.into_obj()?);
        let version = f.require("version")?.as_u64()?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {version} is not the supported {SNAPSHOT_VERSION}"
            ));
        }
        let consumed = f.require("consumed")?.as_u64()?;
        let partial = f.require("partial")?.into_str()?;
        let from = f.take("from").map(|v| v.as_u64().map(SimTime::from_secs)).transpose()?;
        let until = f.take("until").map(|v| v.as_u64().map(SimTime::from_secs)).transpose()?;
        let default_cell = f.take("default_cell").map(JsonVal::into_str).transpose()?;
        let state = ReplayState::from_json(f.require("cells")?)?;
        f.finish()?;
        Ok(ReplayCursor {
            window: TimeWindow { from, until },
            default_cell,
            partial,
            consumed,
            state,
        })
    }
}

/// Replays a whole document through a fresh cursor in one pass.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn replay_str(input: &str, window: TimeWindow) -> Result<ReplayState, TraceParseError> {
    let mut cursor = ReplayCursor::new(window);
    cursor.feed(input)?;
    cursor.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = concat!(
        "{\"seq\":0,\"t\":86400,\"event\":\"run_started\",\"strategy\":\"spotverse\",\"seed\":2024,\"workloads\":3}\n",
        "{\"seq\":1,\"t\":86400,\"event\":\"launched\",\"workload\":0,\"region\":\"us-east-1\",\"spot\":true,\"instance\":\"i-00000001\"}\n",
        "{\"seq\":2,\"t\":90000,\"event\":\"completed\",\"workload\":0,\"region\":\"us-east-1\",\"instance\":\"i-00000001\",\"billed\":2.25}\n",
        "{\"seq\":3,\"t\":90060,\"event\":\"run_ended\",\"completed\":3,\"aborted\":false}\n",
    );

    #[test]
    fn chunked_equals_single_pass() {
        let whole = replay_str(DOC, TimeWindow::ALL).unwrap();
        for split in [1usize, 17, 80, 81, 82, DOC.len() - 1] {
            let mut cursor = ReplayCursor::default();
            cursor.feed(&DOC[..split]).unwrap();
            cursor.feed(&DOC[split..]).unwrap();
            assert_eq!(cursor.finish().unwrap(), whole, "split at {split}");
        }
    }

    #[test]
    fn snapshot_resume_matches() {
        let whole = replay_str(DOC, TimeWindow::ALL).unwrap();
        let split = 100;
        let mut cursor = ReplayCursor::default();
        cursor.feed(&DOC[..split]).unwrap();
        let snap = cursor.snapshot();
        let mut resumed = ReplayCursor::resume(&snap).unwrap();
        resumed.feed(&DOC[split..]).unwrap();
        assert_eq!(resumed.finish().unwrap(), whole);
    }

    #[test]
    fn errors_carry_global_line_numbers() {
        let mut cursor = ReplayCursor::default();
        cursor.feed(DOC).unwrap();
        let err = cursor.feed("garbage\n").unwrap_err();
        assert_eq!(err.line, 5);
    }

    #[test]
    fn default_cell_labels_unprefixed_records() {
        let mut cursor = ReplayCursor::default();
        cursor.set_default_cell(Some("fileA".to_owned()));
        cursor.feed(DOC).unwrap();
        let state = cursor.finish().unwrap();
        assert_eq!(state.cells.len(), 1);
        assert_eq!(state.cells[0].0, "fileA");
    }
}
