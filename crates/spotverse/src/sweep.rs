//! The parallel sweep engine: deterministic concurrent execution of
//! (strategy × scenario × repetition) experiment matrices.
//!
//! Every table and figure in the paper's evaluation is a *sweep* — the
//! same fleet run cell-by-cell under varying strategies, fault scenarios,
//! or repetition seeds. Cells share nothing mutable, so they parallelize
//! perfectly; what they *can* share is the market: building a 12-region
//! precomputed trajectory dominates small-cell runtime, and every cell at
//! the same [`MarketConfig`] observes the identical market by
//! construction. The engine therefore couples a bounded worker pool
//! ([`run_matrix`]) with a config-keyed [`MarketCache`] handing out
//! `Arc<SpotMarket>` clones, so a whole matrix at one seed performs
//! exactly one market construction.
//!
//! Determinism contract: the [`CellOutcome`] vector is in cell order and
//! each cell is a pure function of its [`ExperimentConfig`] and strategy,
//! so the output is bit-identical for any `jobs` value (covered by
//! integration tests). Cells run under `catch_unwind` with one
//! deterministic retry, so one panicking cell degrades to a structured
//! failure instead of poisoning the whole matrix.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cloud_market::{MarketConfig, SpotMarket};

use crate::experiment::{run_experiment_on, ExperimentConfig, ExperimentReport};
use crate::fleet::{run_fleet_on, FleetConfig, FleetReport};
use crate::strategy::Strategy;

/// Environment variable overriding the default sweep parallelism (a
/// `--jobs` flag, when present, wins over it).
pub const JOBS_ENV: &str = "SPOTVERSE_JOBS";

/// A market cache shared across sweep cells: one [`SpotMarket`] per
/// distinct [`MarketConfig`], built at most once no matter how many cells
/// (or worker threads) ask for it concurrently.
///
/// Chaos cells layer their faults through `MarketOverlay`s on the *read*
/// path, so faulted and fault-free cells at the same seed share the same
/// clean base market.
#[derive(Debug, Default)]
pub struct MarketCache {
    markets: Mutex<HashMap<MarketConfig, Arc<OnceLock<Arc<SpotMarket>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MarketCache {
    /// An empty cache.
    pub fn new() -> Self {
        MarketCache::default()
    }

    /// The market for `config`, building it on first request. Concurrent
    /// same-config requests block on the single in-flight build instead of
    /// duplicating it; distinct configs build independently.
    pub fn get_or_build(&self, config: MarketConfig) -> Arc<SpotMarket> {
        let cell = {
            let mut markets = self.markets.lock().expect("market cache poisoned");
            Arc::clone(markets.entry(config).or_default())
        };
        let mut built = false;
        let market = cell.get_or_init(|| {
            built = true;
            Arc::new(SpotMarket::new(config))
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(market)
    }

    /// Requests served from an already-built market.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that performed a market construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct markets held.
    pub fn len(&self) -> usize {
        self.markets.lock().expect("market cache poisoned").len()
    }

    /// Whether the cache holds no markets yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One cell of an experiment matrix.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Display label (e.g. `"spotverse/region_blackout"`).
    pub label: String,
    /// Strategy selector the cell's strategy factory keys on.
    pub strategy: String,
    /// The full experiment configuration, chaos scenario included.
    pub config: ExperimentConfig,
}

impl SweepCell {
    /// A cell running `strategy` under `config`, labelled `label`.
    pub fn new(
        label: impl Into<String>,
        strategy: impl Into<String>,
        config: ExperimentConfig,
    ) -> Self {
        SweepCell {
            label: label.into(),
            strategy: strategy.into(),
            config,
        }
    }
}

/// Resolves the worker count for a sweep of `cells` cells: an explicit
/// request (`--jobs`) wins, then the [`JOBS_ENV`] environment variable,
/// then `min(cells, available_parallelism)`. Always at least 1.
pub fn resolve_jobs(explicit: Option<usize>, cells: usize) -> usize {
    let env = std::env::var(JOBS_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok());
    resolve_jobs_from(explicit, env, cells)
}

/// [`resolve_jobs`] with the environment pre-read (pure, for tests).
fn resolve_jobs_from(explicit: Option<usize>, env: Option<usize>, cells: usize) -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(cells.max(1))
    };
    explicit
        .filter(|&n| n > 0)
        .or(env.filter(|&n| n > 0))
        .unwrap_or_else(default)
}

/// The structured result of one matrix cell: either the report, or the
/// cell's failure message after the deterministic retry was exhausted.
/// One bad cell never poisons its matrix — neighbours complete and the
/// caller decides how to surface the failure.
///
/// Generic over the report type: experiment matrices produce
/// [`CellOutcome`] (= `SweepOutcome<ExperimentReport>`), fleet matrices
/// produce [`FleetCellOutcome`] (= `SweepOutcome<FleetReport>`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome<R> {
    /// The cell's display label.
    pub label: String,
    /// The cell's strategy selector.
    pub strategy: String,
    /// Retries taken after a panic (0 or 1 — each cell gets exactly one
    /// deterministic retry).
    pub retries: u32,
    /// The report, or the panic message of the final failed attempt.
    pub result: Result<R, String>,
}

/// The outcome of a classic experiment cell.
pub type CellOutcome = SweepOutcome<ExperimentReport>;

/// The outcome of a fleet cell.
pub type FleetCellOutcome = SweepOutcome<FleetReport>;

impl<R> SweepOutcome<R> {
    /// Whether the cell produced a report.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Whether the cell failed once and then succeeded on its retry.
    pub fn recovered(&self) -> bool {
        self.retries > 0 && self.result.is_ok()
    }

    /// The report, if the cell succeeded.
    pub fn report(&self) -> Option<&R> {
        self.result.as_ref().ok()
    }

    /// Unwraps the report for callers that treat any cell failure as
    /// fatal (e.g. repetition aggregation, where a missing cell would
    /// silently skew the statistics).
    ///
    /// # Panics
    ///
    /// Panics with the cell label and failure message if the cell failed.
    pub fn into_report(self) -> R {
        match self.result {
            Ok(report) => report,
            Err(e) => panic!("sweep cell {} failed: {e}", self.label),
        }
    }
}

/// Merges the traces of a sweep's outcomes into one canonical JSONL
/// document: cells in matrix order, each cell's records prefixed with its
/// label via the `"cell"` key. Failed cells and cells that ran with
/// tracing disabled contribute nothing. Because [`run_matrix`] returns
/// outcomes in cell order regardless of `jobs`, the merged document is
/// byte-identical for any parallelism — the property the golden-trace
/// suite pins down.
pub fn merged_trace_jsonl(outcomes: &[CellOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        if let Some(trace) = outcome.report().and_then(|r| r.trace.as_ref()) {
            crate::trace::append_trace_jsonl(&mut out, Some(&outcome.label), trace);
        }
    }
    out
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked".to_owned()
    }
}

/// Runs one cell body with panic isolation and exactly one deterministic
/// retry. Cells are pure functions of their config, so the retry only
/// rescues transient host-level failures; a deterministic panic fails
/// identically twice and is reported as the cell's error.
fn run_guarded<R>(label: &str, strategy: &str, body: impl Fn() -> R) -> SweepOutcome<R> {
    let mut retries = 0;
    let mut last_error = String::new();
    for attempt in 0..2u32 {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&body)) {
            Ok(report) => {
                return SweepOutcome {
                    label: label.to_owned(),
                    strategy: strategy.to_owned(),
                    retries,
                    result: Ok(report),
                }
            }
            Err(payload) => {
                last_error = panic_message(payload);
                if attempt == 0 {
                    retries = 1;
                }
            }
        }
    }
    SweepOutcome {
        label: label.to_owned(),
        strategy: strategy.to_owned(),
        retries,
        result: Err(last_error),
    }
}

/// The bounded worker pool shared by every matrix flavour: items are
/// claimed off an atomic counter and results filed into index-addressed
/// slots, so the output is in item order for any `jobs ≥ 1`. A worker
/// that dies surfaces its claimed-but-unfiled items through `lost`
/// instead of poisoning the matrix.
fn run_pool<T, O, W, L>(items: &[T], jobs: usize, run_one: W, lost: L) -> Vec<O>
where
    T: Sync,
    O: Send,
    W: Fn(&T) -> O + Sync,
    L: Fn(&T) -> O,
{
    assert!(jobs > 0, "run_matrix: need at least one worker");
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.min(items.len());
    if jobs == 1 {
        return items.iter().map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let run_one = &run_one;
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, run_one(item)));
                    }
                    local
                })
            })
            .collect();
        // run_guarded never unwinds, so a join failure means the worker
        // itself died; its claimed-but-unfiled cells surface as
        // structured failures below instead of poisoning the matrix.
        for handle in handles {
            if let Ok(local) = handle.join() {
                for (i, outcome) in local {
                    slots[i] = Some(outcome);
                }
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| lost(&items[i])))
        .collect()
}

/// Runs every cell of a matrix on a bounded worker pool and returns one
/// [`CellOutcome`] per cell **in cell order**, regardless of which thread
/// finished first.
///
/// `strategy_for` builds a fresh strategy per cell (strategies may hold
/// state); it runs on the worker thread executing the cell. Markets are
/// shared through `cache`, so all cells at one seed reuse a single
/// construction.
///
/// Each cell is wrapped in `catch_unwind` with one deterministic retry:
/// a panicking cell becomes a `Failed` outcome while its neighbours run
/// to completion.
///
/// Output is bit-identical for any `jobs ≥ 1`: each cell derives every
/// random stream from its own config seed and shares nothing mutable
/// with its neighbours.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_matrix<F>(
    cells: &[SweepCell],
    jobs: usize,
    cache: &MarketCache,
    strategy_for: F,
) -> Vec<CellOutcome>
where
    F: Fn(&SweepCell) -> Box<dyn Strategy> + Sync,
{
    run_pool(cells, jobs, |cell| run_cell(cell, cache, &strategy_for), lost_outcome)
}

/// Executes one cell exactly as `run_matrix` does — the shared path the
/// orchestrator's shard workers also take, so an orchestrated sweep is
/// byte-identical to the in-process pool cell for cell.
pub(crate) fn run_cell<F>(cell: &SweepCell, cache: &MarketCache, strategy_for: &F) -> CellOutcome
where
    F: Fn(&SweepCell) -> Box<dyn Strategy> + Sync,
{
    run_guarded(&cell.label, &cell.strategy, || {
        let market = cache.get_or_build(cell.config.market);
        run_experiment_on(market, cell.config.clone(), strategy_for(cell))
    })
}

/// One cell of a *fleet* matrix: a [`FleetConfig`] instead of an
/// [`ExperimentConfig`], sharing the same market cache and worker pool.
#[derive(Debug, Clone)]
pub struct FleetSweepCell {
    /// Display label (e.g. `"fleet/spotverse/cap2"`).
    pub label: String,
    /// Strategy selector the cell's strategy factory keys on.
    pub strategy: String,
    /// The full fleet configuration.
    pub config: FleetConfig,
}

impl FleetSweepCell {
    /// A fleet cell running `strategy` under `config`, labelled `label`.
    pub fn new(
        label: impl Into<String>,
        strategy: impl Into<String>,
        config: FleetConfig,
    ) -> Self {
        FleetSweepCell {
            label: label.into(),
            strategy: strategy.into(),
            config,
        }
    }
}

fn lost_outcome<R>(cell: &(impl HasCellIdentity + ?Sized)) -> SweepOutcome<R> {
    SweepOutcome {
        label: cell.label().to_owned(),
        strategy: cell.strategy().to_owned(),
        retries: 0,
        result: Err("sweep worker lost".to_owned()),
    }
}

trait HasCellIdentity {
    fn label(&self) -> &str;
    fn strategy(&self) -> &str;
}

impl HasCellIdentity for SweepCell {
    fn label(&self) -> &str {
        &self.label
    }
    fn strategy(&self) -> &str {
        &self.strategy
    }
}

impl HasCellIdentity for FleetSweepCell {
    fn label(&self) -> &str {
        &self.label
    }
    fn strategy(&self) -> &str {
        &self.strategy
    }
}

/// Runs a matrix of fleet cells on the same bounded worker pool and
/// market cache as [`run_matrix`], returning one [`FleetCellOutcome`] per
/// cell **in cell order**. Shares the full determinism contract: output
/// is bit-identical for any `jobs ≥ 1`, cells are panic-isolated with one
/// deterministic retry, and same-config cells share one market build.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_fleet_matrix<F>(
    cells: &[FleetSweepCell],
    jobs: usize,
    cache: &MarketCache,
    strategy_for: F,
) -> Vec<FleetCellOutcome>
where
    F: Fn(&FleetSweepCell) -> Box<dyn Strategy> + Sync,
{
    run_pool(
        cells,
        jobs,
        |cell| {
            run_guarded(&cell.label, &cell.strategy, || {
                let market = cache.get_or_build(cell.config.market);
                run_fleet_on(market, cell.config.clone(), strategy_for(cell))
            })
        },
        lost_outcome,
    )
}

/// [`merged_trace_jsonl`] for fleet matrices: merges the aggregate traces
/// of fleet outcomes into one canonical JSONL document, cells in matrix
/// order, records prefixed with the cell label.
pub fn merged_fleet_trace_jsonl(outcomes: &[FleetCellOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        if let Some(trace) = outcome.report().and_then(|r| r.aggregate.trace.as_ref()) {
            crate::trace::append_trace_jsonl(&mut out, Some(&outcome.label), trace);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_workloads::{paper_fleet, WorkloadKind};
    use cloud_market::{InstanceType, Region};
    use sim_kernel::SimRng;

    use crate::strategy::SingleRegionStrategy;

    fn config(seed: u64, n: usize) -> ExperimentConfig {
        let rng = SimRng::seed_from_u64(seed);
        ExperimentConfig::new(
            seed,
            InstanceType::M5Xlarge,
            paper_fleet(WorkloadKind::GenomeReconstruction, n, &rng),
        )
    }

    #[test]
    fn cache_builds_each_config_once() {
        let cache = MarketCache::new();
        let a = cache.get_or_build(MarketConfig::with_seed(5));
        let b = cache.get_or_build(MarketConfig::with_seed(5));
        let c = cache.get_or_build(MarketConfig::with_seed(6));
        assert!(Arc::ptr_eq(&a, &b), "same config must share one market");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.misses(), cache.hits()), (2, 1));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_same_config_requests_share_one_build() {
        let cache = MarketCache::new();
        let markets: Vec<Arc<SpotMarket>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get_or_build(MarketConfig::with_seed(9))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.misses(), 1, "exactly one construction");
        assert_eq!(cache.hits(), 3);
        assert!(markets.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn matrix_reports_come_back_in_cell_order() {
        let cache = MarketCache::new();
        let cells: Vec<SweepCell> = (0..4)
            .map(|i| SweepCell::new(format!("cell-{i}"), "single-region", config(40 + i, 2)))
            .collect();
        let outcomes = run_matrix(&cells, 4, &cache, |_| {
            Box::new(SingleRegionStrategy::new(Region::CaCentral1))
        });
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(CellOutcome::is_ok));
        // Distinct seeds give distinct outcomes; order must match cells.
        let serial = run_matrix(&cells, 1, &MarketCache::new(), |_| {
            Box::new(SingleRegionStrategy::new(Region::CaCentral1))
        });
        for (i, (p, s)) in outcomes.iter().zip(serial.iter()).enumerate() {
            assert_eq!(p.label, format!("cell-{i}"), "outcomes keep cell order");
            let (p, s) = (p.report().unwrap(), s.report().unwrap());
            assert_eq!(p.makespan, s.makespan);
            assert_eq!(p.cost.total, s.cost.total);
        }
    }

    #[test]
    fn merged_trace_prefixes_cells_in_matrix_order() {
        use crate::trace::TraceConfig;
        let cache = MarketCache::new();
        let cells: Vec<SweepCell> = (0..3)
            .map(|i| {
                let mut c = config(60 + i, 2);
                c.trace = TraceConfig::enabled();
                SweepCell::new(format!("cell-{i}"), "single-region", c)
            })
            .collect();
        let outcomes = run_matrix(&cells, 2, &cache, |_| {
            Box::new(SingleRegionStrategy::new(Region::CaCentral1))
        });
        let merged = merged_trace_jsonl(&outcomes);
        assert!(!merged.is_empty());
        assert!(merged.ends_with('\n'));
        // Lines arrive grouped by cell, cells in matrix order.
        let firsts: Vec<usize> = (0..3)
            .map(|i| merged.find(&format!("{{\"cell\":\"cell-{i}\"")).expect("cell present"))
            .collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]), "cell order preserved: {firsts:?}");
        // Untraced runs contribute nothing.
        let untraced = run_matrix(
            &[SweepCell::new("plain", "single-region", config(99, 2))],
            1,
            &cache,
            |_| Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        assert!(merged_trace_jsonl(&untraced).is_empty());
    }

    #[test]
    fn panicking_cell_is_isolated_and_reported() {
        let cache = MarketCache::new();
        let cells = vec![
            SweepCell::new("good-0", "single-region", config(40, 2)),
            SweepCell::new("bad", "single-region", config(41, 2)),
            SweepCell::new("good-1", "single-region", config(42, 2)),
        ];
        let outcomes = run_matrix(&cells, 2, &cache, |cell| {
            if cell.label == "bad" {
                panic!("injected cell failure");
            }
            Box::new(SingleRegionStrategy::new(Region::CaCentral1))
        });
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok(), "neighbour cells complete");
        assert!(outcomes[2].is_ok());
        let bad = &outcomes[1];
        assert!(!bad.is_ok());
        assert_eq!(bad.retries, 1, "the deterministic retry was attempted");
        assert_eq!(bad.result.as_ref().unwrap_err(), "injected cell failure");
        assert!(!bad.recovered());
    }

    #[test]
    fn transient_cell_failure_recovers_on_retry() {
        use std::sync::atomic::AtomicBool;
        let cache = MarketCache::new();
        let cells = vec![SweepCell::new("flaky", "single-region", config(43, 2))];
        let failed_once = AtomicBool::new(false);
        let outcomes = run_matrix(&cells, 1, &cache, |_| {
            if !failed_once.swap(true, Ordering::Relaxed) {
                panic!("transient failure");
            }
            Box::new(SingleRegionStrategy::new(Region::CaCentral1))
        });
        assert!(outcomes[0].is_ok());
        assert!(outcomes[0].recovered());
        assert_eq!(outcomes[0].retries, 1);
    }

    #[test]
    fn same_seed_cells_share_one_market() {
        let cache = MarketCache::new();
        let cells: Vec<SweepCell> = (0..6)
            .map(|i| SweepCell::new(format!("rep-{i}"), "single-region", config(7, 2)))
            .collect();
        let _ = run_matrix(&cells, 3, &cache, |_| {
            Box::new(SingleRegionStrategy::new(Region::ApNortheast3))
        });
        assert_eq!(cache.misses(), 1, "one construction for the whole sweep");
        assert_eq!(cache.hits(), 5);
    }

    #[test]
    fn empty_matrix_is_a_no_op() {
        let cache = MarketCache::new();
        assert!(run_matrix(&[], 4, &cache, |_| -> Box<dyn Strategy> {
            unreachable!("no cells to build for")
        })
        .is_empty());
        assert!(cache.is_empty());
    }

    #[test]
    fn jobs_resolution_precedence() {
        // Explicit flag beats env beats default.
        assert_eq!(resolve_jobs_from(Some(3), Some(8), 16), 3);
        assert_eq!(resolve_jobs_from(None, Some(8), 16), 8);
        let auto = resolve_jobs_from(None, None, 16);
        assert!(auto >= 1);
        // Default is bounded by the cell count.
        assert_eq!(resolve_jobs_from(None, None, 1), 1);
        // Zero requests are corrected to a sane floor.
        assert_eq!(resolve_jobs_from(Some(0), None, 4), resolve_jobs_from(None, None, 4));
    }
}
