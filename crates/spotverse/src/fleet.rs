//! The fleet event loop: N concurrent workloads multiplexed over one
//! shared control plane.
//!
//! This is the engine behind both entry points:
//!
//! * [`run_experiment`](crate::experiment::run_experiment) runs the
//!   degenerate fleet — every workload arrives at the start, no capacity
//!   caps — and is **provably pure** against the pre-decomposition
//!   controller: a fleet of N=1 (or N arriving together) reproduces the
//!   single-workload `ExperimentReport` and golden traces byte-for-byte.
//! * [`run_fleet`] exposes the general form: staggered arrival times,
//!   per-workload deadlines, and per-region concurrent-instance capacity
//!   caps enforced through the Optimizer's exclusion-slice paths (a full
//!   region refills from the next-ranked candidate exactly like a
//!   quarantined one).
//!
//! Capacity semantics: a cap of `k` bounds the *running* instances per
//! region (spot and on-demand alike; open spot requests reserve nothing).
//! At decision time, full regions join the health-quarantine exclusion
//! slice, so placements refill from the next-ranked region. At launch
//! time a placement aimed at a region that filled since the decision is
//! deferred to the retry sweep, which re-asks the strategy.

use std::collections::BTreeMap;
use std::sync::Arc;

use aws_stack::{ObjectBody, RetryPolicy};
use bio_workloads::WorkloadSpec;
use chaos::ChaosEngine;
use cloud_compute::{InstanceId, ServiceKind, SpotRequestOutcome, TerminationReason};
use cloud_market::{Region, SpotMarket};
use sim_kernel::{
    CumulativeCounter, Model, Scheduler, SimDuration, SimRng, SimTime, Simulation,
};

use crate::controlplane::{cheapest_on_demand, ControlPlane};
use crate::experiment::{
    CostBreakdown, ExperimentConfig, ExperimentReport, INTERRUPTION_HANDLER, LOG_BUCKET,
};
use crate::optimizer::Placement;
use crate::strategy::{Strategy, StrategyContext};
use crate::trace::{DecisionKind, TraceEvent, Tracer};
use crate::workload::{WorkloadPhase, WorkloadReport, WorkloadRuntime};

/// A tenant's scheduling tier within an arrival batch.
///
/// Priorities order placement *within* a batch of workloads arriving
/// together: higher tiers are handed to the strategy first, so under
/// round-robin initial placement they claim the top-ranked regions, and
/// under capacity pressure they launch before lower tiers contend for
/// slots. Fleets that never set a priority (every committed golden trace)
/// are all [`Priority::Standard`], for which the ordering is a stable
/// no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort batch analysis: placed last within its batch.
    Batch,
    /// The default tier.
    #[default]
    Standard,
    /// Latency-sensitive interactive work: placed first within its batch.
    Interactive,
}

impl Priority {
    /// Canonical snake_case label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Standard => "standard",
            Priority::Interactive => "interactive",
        }
    }
}

/// One workload's slot in a fleet: the spec plus its arrival offset.
#[derive(Debug, Clone)]
pub struct FleetWorkload {
    /// The workload to run.
    pub spec: WorkloadSpec,
    /// Arrival offset from the fleet start (ZERO = present at start).
    pub arrival: SimDuration,
    /// Tenant label for multi-tenant generated fleets (`None` = the
    /// single-tenant default; emits nothing in traces).
    pub tenant: Option<String>,
    /// Scheduling tier within this workload's arrival batch.
    pub priority: Priority,
}

impl FleetWorkload {
    /// A single-tenant, default-priority slot — the shape every
    /// non-generated fleet uses.
    pub fn new(spec: WorkloadSpec, arrival: SimDuration) -> Self {
        FleetWorkload { spec, arrival, tenant: None, priority: Priority::Standard }
    }
}

/// Fleet run configuration: the experiment knobs plus staggered arrivals
/// and an optional per-region concurrency cap.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed (market + all decision streams fork from it).
    pub seed: u64,
    /// Market build parameters.
    pub market: cloud_market::MarketConfig,
    /// The instance type every workload runs on.
    pub instance_type: cloud_market::InstanceType,
    /// The fleet, each workload with its arrival offset.
    pub workloads: Vec<FleetWorkload>,
    /// When the fleet starts (offset into the market horizon).
    pub start: SimTime,
    /// Monitor collection period.
    pub monitor_period: SimDuration,
    /// Open-request retry sweep interval.
    pub retry_interval: SimDuration,
    /// Per-workload runtime budget: workload `w`'s deadline is
    /// `start + arrival(w) + max_runtime`.
    pub max_runtime: SimDuration,
    /// Route optimizer inputs through the Monitor→KV snapshot pipeline.
    pub monitor_pipeline: bool,
    /// Where checkpoint working sets are persisted.
    pub checkpoint_backend: crate::experiment::CheckpointBackend,
    /// Optional fault-injection scenario.
    pub chaos: Option<chaos::ChaosScenario>,
    /// Resilience control plane tuning.
    pub health: crate::health::HealthConfig,
    /// Decision-trace recording.
    pub trace: crate::trace::TraceConfig,
    /// Per-region cap on *concurrently running* instances (`None` =
    /// unbounded, the classic experiment behavior).
    pub region_capacity: Option<u32>,
    /// Serve every decision within a snapshot epoch from one parsed
    /// assessment read instead of re-scanning the Monitor's KV rows per
    /// decision. Observationally identical either way (the underlying
    /// scan is unbilled and side-effect-free); `false` exists as the
    /// ablation arm for the `fleet_scale` bench.
    pub reuse_decision_snapshot: bool,
}

impl FleetConfig {
    /// A standard fleet configuration with the same defaults as
    /// [`ExperimentConfig::new`].
    pub fn new(
        seed: u64,
        instance_type: cloud_market::InstanceType,
        workloads: Vec<FleetWorkload>,
    ) -> Self {
        FleetConfig {
            seed,
            market: cloud_market::MarketConfig::with_seed(seed),
            instance_type,
            workloads,
            start: SimTime::from_days(1),
            monitor_period: SimDuration::from_mins(15),
            retry_interval: SimDuration::from_mins(15),
            max_runtime: SimDuration::from_days(30),
            monitor_pipeline: true,
            checkpoint_backend: crate::experiment::CheckpointBackend::ObjectStore,
            chaos: None,
            health: crate::health::HealthConfig::default(),
            trace: crate::trace::TraceConfig::default(),
            region_capacity: None,
            reuse_decision_snapshot: true,
        }
    }

    /// The degenerate fleet equivalent of a classic experiment: every
    /// workload arrives at the start, no capacity cap. Running this
    /// through [`run_fleet_on`] reproduces
    /// [`run_experiment_on`](crate::experiment::run_experiment_on)
    /// byte-for-byte.
    pub fn from_experiment(config: &ExperimentConfig) -> Self {
        FleetConfig {
            seed: config.seed,
            market: config.market,
            instance_type: config.instance_type,
            workloads: config
                .workloads
                .iter()
                .map(|spec| FleetWorkload::new(spec.clone(), SimDuration::ZERO))
                .collect(),
            start: config.start,
            monitor_period: config.monitor_period,
            retry_interval: config.retry_interval,
            max_runtime: config.max_runtime,
            monitor_pipeline: config.monitor_pipeline,
            checkpoint_backend: config.checkpoint_backend,
            chaos: config.chaos.clone(),
            health: config.health.clone(),
            trace: config.trace,
            region_capacity: None,
            reuse_decision_snapshot: true,
        }
    }

    /// Evenly staggered arrivals: workload `i` arrives at `i * spacing`.
    pub fn staggered(
        seed: u64,
        instance_type: cloud_market::InstanceType,
        specs: Vec<WorkloadSpec>,
        spacing: SimDuration,
    ) -> Self {
        let workloads = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| FleetWorkload::new(spec, spacing * i as u64))
            .collect();
        FleetConfig::new(seed, instance_type, workloads)
    }
}

/// The result of a fleet run: the aggregate experiment report plus the
/// per-workload breakdown and fleet-only counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Aggregate metrics over the whole fleet, in the exact shape of a
    /// classic single-run report.
    pub aggregate: ExperimentReport,
    /// One report per workload, in fleet order.
    pub workloads: Vec<WorkloadReport>,
    /// Launches deferred because the placement's region was at its
    /// concurrency cap.
    pub capacity_deferrals: u64,
    /// Workloads that hit their per-workload deadline unfinished.
    pub expired: usize,
    /// Simulator events delivered over the run — the denominator for the
    /// throughput harness's events/sec metric.
    pub events: u64,
}

#[derive(Debug)]
pub(crate) enum Event {
    Start,
    Arrive(usize),
    Launch(usize),
    Retry(usize),
    Notice(usize, InstanceId),
    Reclaim(usize, InstanceId),
    Complete(usize, InstanceId),
    Expire(usize),
    MonitorTick,
    /// Proactive checkpoint cadence for strategies that opt into one via
    /// [`Strategy::checkpoint_interval`]; never scheduled otherwise.
    CheckpointTick(usize, InstanceId),
}

struct FleetModel {
    config: FleetConfig,
    cp: ControlPlane,
    strategy: Box<dyn Strategy>,
    strategy_rng: SimRng,
    workloads: Vec<WorkloadRuntime>,
    /// Arrival batches: (absolute time, workload indices), ascending.
    batches: Vec<(SimTime, Vec<usize>)>,
    completed: usize,
    expired: usize,
    interruptions: CumulativeCounter,
    /// Interruptions per region, indexed like `running_by_region`; the
    /// report's sparse `BTreeMap` is assembled once at the end of the run.
    interruptions_by_region: [u64; Region::ALL.len()],
    completions: CumulativeCounter,
    /// Launches per region, indexed like `running_by_region`.
    launches_by_region: [u64; Region::ALL.len()],
    /// Concurrently running instances per region, indexed by the region's
    /// position in [`Region::ALL`]. A flat array keeps the per-decision
    /// capacity checks allocation- and tree-walk-free at fleet scale.
    running_by_region: [u32; Region::ALL.len()],
    /// Pooled batch-placement buffer, reused across arrival batches so a
    /// Poisson fleet (mostly batches of one) places without allocating.
    placements_scratch: Vec<Placement>,
    /// The strategy's requested proactive checkpoint cadence, re-judged
    /// at every placement decision. `None` for every classic strategy —
    /// no tick is ever scheduled and existing streams are untouched.
    checkpoint_cadence: Option<SimDuration>,
    capacity_deferrals: u64,
    /// Global abort horizon: the latest per-workload deadline.
    horizon: SimTime,
    aborted: bool,
}

impl std::fmt::Debug for FleetModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetModel")
            .field("strategy", &self.strategy.name())
            .field("completed", &self.completed)
            .field("interruptions", &self.interruptions.count())
            .finish_non_exhaustive()
    }
}

impl FleetModel {
    fn done(&self) -> bool {
        self.completed + self.expired == self.workloads.len() || self.aborted
    }

    /// Whether `region` is at its concurrent-instance cap.
    fn at_capacity(&self, region: Region) -> bool {
        match self.config.region_capacity {
            Some(cap) => self.running_by_region[region as usize] >= cap,
            None => false,
        }
    }

    /// Extends a health-quarantine exclusion list with every region at
    /// its concurrency cap, in [`Region::ALL`] order (matching the old
    /// `BTreeMap` key order). A structural no-op without a cap, so
    /// classic experiment streams are untouched.
    fn with_capacity_exclusions(&self, mut excluded: Vec<Region>) -> Vec<Region> {
        if self.config.region_capacity.is_none() {
            return excluded;
        }
        for region in Region::ALL {
            if self.at_capacity(region) && !excluded.contains(&region) {
                excluded.push(region);
            }
        }
        excluded
    }

    fn occupy_slot(&mut self, region: Region) {
        self.running_by_region[region as usize] += 1;
    }

    fn free_slot(&mut self, region: Region) {
        let count = &mut self.running_by_region[region as usize];
        *count = count.saturating_sub(1);
    }

    fn relocate(&mut self, w: usize, now: SimTime, previous: Region) -> Placement {
        let (assessments, degraded) = self.cp.decision_inputs(now);
        if degraded {
            // Expired telemetry: don't trust scores or spot prices, take
            // guaranteed capacity at the cheapest on-demand rate. Skips
            // the strategy (and its RNG) entirely — only reachable under
            // chaos, so fault-free streams are untouched.
            let placement = Placement::OnDemand(cheapest_on_demand(&assessments));
            if self.cp.tracer.enabled() {
                self.cp.tracer.record(
                    now,
                    TraceEvent::Decision {
                        kind: DecisionKind::Migration,
                        workload: Some(w),
                        previous: Some(previous),
                        degraded: true,
                        quarantined: Vec::new(),
                        candidates: None,
                        placements: vec![placement],
                    },
                );
            }
            return placement;
        }
        let quarantined = self.cp.health.quarantined(now);
        if !quarantined.is_empty() {
            self.cp.quarantined_decisions += 1;
        }
        let quarantined = self.with_capacity_exclusions(quarantined);
        let mut ctx = StrategyContext {
            instance_type: self.config.instance_type,
            now,
            assessments: &assessments,
            quarantined: &quarantined,
            rng: &mut self.strategy_rng,
        };
        let placement = self.strategy.relocate(&mut ctx, previous);
        self.checkpoint_cadence = self.strategy.checkpoint_interval(&ctx);
        if self.cp.tracer.enabled() {
            let candidates =
                self.strategy
                    .explain_candidates(&assessments, &quarantined, Some(previous));
            self.cp.tracer.record(
                now,
                TraceEvent::Decision {
                    kind: DecisionKind::Migration,
                    workload: Some(w),
                    previous: Some(previous),
                    degraded: false,
                    quarantined,
                    candidates,
                    placements: vec![placement],
                },
            );
        }
        placement
    }

    /// Places an arrival batch: one strategy decision covering every
    /// workload in the batch, then a launch event per workload.
    fn place_batch(&mut self, ids: &[usize], now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        let (assessments, degraded) = self.cp.decision_inputs(now);
        let n = ids.len();
        let mut quarantined = Vec::new();
        // Reuse the pooled buffer: under Poisson arrivals nearly every
        // batch is small, and a fresh Vec per batch dominated the dispatch
        // allocation profile.
        let mut placements = std::mem::take(&mut self.placements_scratch);
        placements.clear();
        if degraded {
            placements.extend(std::iter::repeat_n(
                Placement::OnDemand(cheapest_on_demand(&assessments)),
                n,
            ));
        } else {
            quarantined = self.cp.health.quarantined(now);
            if !quarantined.is_empty() {
                self.cp.quarantined_decisions += 1;
            }
            quarantined = self.with_capacity_exclusions(quarantined);
            let mut ctx = StrategyContext {
                instance_type: self.config.instance_type,
                now,
                assessments: &assessments,
                quarantined: &quarantined,
                rng: &mut self.strategy_rng,
            };
            self.strategy.initial_placements_into(&mut ctx, n, &mut placements);
            self.checkpoint_cadence = self.strategy.checkpoint_interval(&ctx);
        }
        debug_assert_eq!(placements.len(), n);
        if self.cp.tracer.enabled() {
            let candidates = if degraded {
                None
            } else {
                self.strategy.explain_candidates(&assessments, &quarantined, None)
            };
            self.cp.tracer.record(
                now,
                TraceEvent::Decision {
                    kind: DecisionKind::Initial,
                    workload: None,
                    previous: None,
                    degraded,
                    quarantined,
                    candidates,
                    placements: placements.clone(),
                },
            );
        }
        for (i, &placement) in placements.iter().enumerate() {
            let w = ids[i];
            self.workloads[w].placement = placement;
            self.workloads[w].phase = WorkloadPhase::Requesting;
            scheduler.schedule_in(SimDuration::ZERO, Event::Launch(w));
        }
        self.placements_scratch = placements;
    }

    fn handle_start(&mut self, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        // Prime the Monitor so the first decision has a snapshot. Under a
        // throttle storm the collection may fail; decisions then fall back
        // to fresh market reads until a tick succeeds.
        match self.cp.run_monitor_collection(now) {
            Ok(_) => self.cp.note_collection_success(now),
            Err(e) => {
                self.cp.telemetry.throttled_retries += 1;
                self.cp.note_collection_failure();
                self.cp
                    .tracer
                    .record(now, TraceEvent::CollectionFailed { retryable: e.is_retryable() });
            }
        }
        scheduler.schedule_in(self.config.monitor_period, Event::MonitorTick);

        // Place the batch present at the start (all of it, for a classic
        // experiment), then schedule the later arrival batches and any
        // heterogeneous per-workload deadlines. A degenerate fleet has a
        // single batch and every deadline equal to the horizon, so neither
        // loop schedules anything.
        let mut first_arrival = 0;
        if self.batches.first().is_some_and(|(at, _)| *at == now) {
            // Batches are placed exactly once, so the index list can be
            // moved out instead of cloned.
            let ids = std::mem::take(&mut self.batches[0].1);
            first_arrival = 1;
            self.place_batch(&ids, now, scheduler);
        }
        for b in first_arrival..self.batches.len() {
            scheduler.schedule_at(self.batches[b].0, Event::Arrive(b));
        }
        for w in 0..self.workloads.len() {
            if self.workloads[w].deadline < self.horizon {
                scheduler.schedule_at(self.workloads[w].deadline, Event::Expire(w));
            }
        }
    }

    fn handle_arrive(&mut self, b: usize, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        // Each batch arrives exactly once: move the index list out rather
        // than cloning it per arrival (at 10k workloads that's 10k Vec
        // allocations on the dispatch hot path), and only materialize the
        // trace payload when the recorder is actually on.
        let ids = std::mem::take(&mut self.batches[b].1);
        if self.cp.tracer.enabled() {
            let workloads = &self.config.workloads;
            let tenants = if ids.iter().any(|&w| workloads[w].tenant.is_some()) {
                ids.iter()
                    .map(|&w| workloads[w].tenant.clone().unwrap_or_default())
                    .collect()
            } else {
                Vec::new()
            };
            let priorities = if ids.iter().any(|&w| workloads[w].priority != Priority::Standard)
            {
                ids.iter().map(|&w| workloads[w].priority.label()).collect()
            } else {
                Vec::new()
            };
            self.cp.tracer.record(
                now,
                TraceEvent::WorkloadsArrived { batch: ids.clone(), tenants, priorities },
            );
        }
        self.place_batch(&ids, now, scheduler);
    }

    fn handle_launch(&mut self, w: usize, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        if self.workloads[w].settled() || self.workloads[w].running.is_some() {
            return;
        }
        let itype = self.config.instance_type;
        let placement = self.workloads[w].placement;
        // A region that filled up between the decision and this launch
        // defers to the retry sweep, which re-asks the strategy with the
        // full region excluded. Unreachable without a capacity cap.
        if self.at_capacity(placement.region()) {
            self.capacity_deferrals += 1;
            self.cp.tracer.record(
                now,
                TraceEvent::CapacityDeferred { workload: w, region: placement.region() },
            );
            scheduler.schedule_in(self.config.retry_interval, Event::Retry(w));
            return;
        }
        match placement {
            Placement::Spot(region) => match self.cp.ec2.request_spot(region, itype, now) {
                Ok(SpotRequestOutcome::Fulfilled(launch)) => {
                    self.note_launch(region);
                    // Heals breaker strikes / closes a half-open probe; a
                    // structural no-op when the region has no breaker
                    // entry, i.e. on every fault-free run.
                    let transition = self.cp.health.record_fulfillment(region, now);
                    self.cp.trace_breaker(now, transition);
                    self.cp.tracer.record(
                        now,
                        TraceEvent::Launched {
                            workload: w,
                            region,
                            spot: true,
                            instance: launch.instance,
                        },
                    );
                    let FleetModel { workloads, cp, .. } = self;
                    workloads[w].begin_execution(
                        w,
                        region,
                        launch.instance,
                        launch.ready_at,
                        launch.interruption_at,
                        now,
                        scheduler,
                        cp,
                    );
                    self.schedule_checkpoint_tick(w, launch.instance, now, scheduler);
                    self.occupy_slot(region);
                }
                Ok(SpotRequestOutcome::OpenNoCapacity) => {
                    // Natural no-capacity and blackout-blocked requests are
                    // indistinguishable at the API; only chaos-attributed
                    // rejections strike the breaker, so fault-free runs
                    // never grow a ledger entry.
                    let blackout = self
                        .cp
                        .chaos
                        .as_ref()
                        .is_some_and(|c| c.is_blackout(region, now));
                    if blackout {
                        self.cp.tracer.record(
                            now,
                            TraceEvent::ChaosFault { kind: "spot_blackout", region: Some(region) },
                        );
                        let transition = self.cp.health.record_rejection(region, now);
                        self.cp.trace_breaker(now, transition);
                    }
                    self.cp
                        .tracer
                        .record(now, TraceEvent::RequestOpen { workload: w, region, blackout });
                    // The Controller's periodic sweep picks it back up.
                    scheduler.schedule_in(self.config.retry_interval, Event::Retry(w));
                }
                // A failed request (e.g. a region knocked out from under
                // an in-flight placement) also lands on the retry sweep
                // instead of killing the run.
                Err(_) => {
                    if self.cp.chaos.is_some() {
                        let transition = self.cp.health.record_rejection(region, now);
                        self.cp.trace_breaker(now, transition);
                    }
                    self.cp
                        .tracer
                        .record(now, TraceEvent::RequestFailed { workload: w, region });
                    scheduler.schedule_in(self.config.retry_interval, Event::Retry(w));
                }
            },
            Placement::OnDemand(region) => {
                let launch = self
                    .cp
                    .ec2
                    .launch_on_demand(region, itype, now)
                    .expect("on-demand launch always succeeds in offered regions");
                self.note_launch(region);
                self.cp.tracer.record(
                    now,
                    TraceEvent::Launched {
                        workload: w,
                        region,
                        spot: false,
                        instance: launch.instance,
                    },
                );
                let FleetModel { workloads, cp, .. } = self;
                workloads[w].begin_execution(
                    w,
                    region,
                    launch.instance,
                    launch.ready_at,
                    None,
                    now,
                    scheduler,
                    cp,
                );
                // On-demand instances are never reclaimed, so a proactive
                // cadence buys them nothing: skip the tick entirely.
                self.occupy_slot(region);
            }
        }
    }

    /// Arms the first proactive checkpoint tick for a freshly launched
    /// spot instance, when the strategy asked for a cadence and the
    /// workload can checkpoint at all. A no-op for every classic
    /// strategy (`checkpoint_cadence` stays `None`).
    fn schedule_checkpoint_tick(
        &mut self,
        w: usize,
        instance: InstanceId,
        now: SimTime,
        scheduler: &mut Scheduler<'_, Event>,
    ) {
        if let Some(interval) = self.checkpoint_cadence {
            if self.workloads[w].spec.kind.is_checkpointable() {
                scheduler.schedule_at(now + interval, Event::CheckpointTick(w, instance));
            }
        }
    }

    /// A proactive checkpoint tick fired: save if the instance is still
    /// the one the tick was armed for, then re-arm the cadence.
    fn handle_checkpoint_tick(
        &mut self,
        w: usize,
        instance: InstanceId,
        now: SimTime,
        scheduler: &mut Scheduler<'_, Event>,
    ) {
        let Some(interval) = self.checkpoint_cadence else {
            return;
        };
        let Some(running) = &self.workloads[w].running else {
            return;
        };
        if running.instance != instance || !self.workloads[w].spec.kind.is_checkpointable() {
            return;
        }
        let FleetModel { workloads, cp, .. } = self;
        workloads[w].proactive_checkpoint(w, now, cp);
        scheduler.schedule_at(now + interval, Event::CheckpointTick(w, instance));
    }

    fn note_launch(&mut self, region: Region) {
        self.launches_by_region[region as usize] += 1;
    }

    /// The retry sweep. If the pending placement's region has since been
    /// blacked out, quarantined by its breaker, or filled to its
    /// concurrency cap, re-ask the strategy for a target before
    /// requesting again — otherwise a migration aimed at a now-dead
    /// region would spin on it until the fault lifts.
    fn handle_retry(&mut self, w: usize, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        if self.workloads[w].settled() || self.workloads[w].running.is_some() {
            return;
        }
        let needs_replacement = match self.workloads[w].placement {
            Placement::Spot(region) => {
                let blacked_out = self
                    .cp
                    .chaos
                    .as_ref()
                    .is_some_and(|c| c.is_blackout(region, now));
                blacked_out
                    || self.cp.health.is_quarantined(region, now)
                    || self.at_capacity(region)
            }
            // Only the concurrency cap can block an on-demand launch.
            Placement::OnDemand(region) => self.at_capacity(region),
        };
        if needs_replacement {
            let region = self.workloads[w].placement.region();
            let placement = self.relocate(w, now, region);
            self.workloads[w].placement = placement;
        }
        self.handle_launch(w, now, scheduler);
    }

    fn handle_reclaim(
        &mut self,
        w: usize,
        instance: InstanceId,
        now: SimTime,
        scheduler: &mut Scheduler<'_, Event>,
    ) {
        let Some(running) = &self.workloads[w].running else {
            return;
        };
        if running.instance != instance {
            return;
        }
        let region = running.region;
        let ready_at = running.ready_at;
        self.workloads[w].running = None;
        self.workloads[w].phase = WorkloadPhase::Migrating;
        self.free_slot(region);

        // Account the interruption.
        self.interruptions.increment(now);
        self.interruptions_by_region[region as usize] += 1;
        self.workloads[w].interruptions += 1;
        // Interruptions strike the breaker only while the region is under
        // active chaos stress (blackout or hazard inflation) — natural
        // market interruptions are the paper's normal operating regime,
        // not a health signal, and must not perturb fault-free runs.
        if self.cp.chaos.as_ref().is_some_and(|c| {
            c.is_blackout(region, now) || c.overlay().hazard_multiplier(region, now) != 1.0
        }) {
            self.cp.tracer.record(
                now,
                TraceEvent::ChaosFault { kind: "chaos_interruption", region: Some(region) },
            );
            let transition = self.cp.health.record_interruption(region, now);
            self.cp.trace_breaker(now, transition);
        }

        // Bill the terminated instance. (Billing first lets the trace
        // stamp the interruption with its cost before the checkpoint
        // settlement events; the ledger only sums, so the same-instant
        // order is observationally irrelevant otherwise.)
        let billed = self
            .cp
            .ec2
            .terminate(instance, now, TerminationReason::Interrupted)
            .expect("reclaimed instance was running");
        self.workloads[w].billed += billed;
        self.cp.tracer.record(
            now,
            TraceEvent::Interrupted { workload: w, region, instance, billed: billed.amount() },
        );

        // Progress bookkeeping: checkpoint workloads resume from the last
        // *durable, valid* generation; standard workloads lose everything.
        if self.workloads[w].spec.kind.is_checkpointable() {
            let FleetModel { workloads, cp, .. } = self;
            workloads[w].settle_checkpoints(w, now, cp);
        } else {
            let elapsed = now.saturating_duration_since(ready_at);
            let _ = self.workloads[w].invocation.record_execution(elapsed);
        }
        self.workloads[w].invocation.handle_interruption();

        // Log the interruption.
        let log_key = format!("interruptions/{}/{}", self.workloads[w].spec.id, instance);
        // Activity logging is best-effort: a throttled put loses the log
        // line, never the run.
        if self
            .cp
            .s3
            .put_object(
                LOG_BUCKET,
                log_key,
                ObjectBody::from_text(format!("{instance} reclaimed in {region} at {now}")),
                region,
                now,
                self.cp.ec2.ledger_mut(),
            )
            .is_err()
        {
            self.cp.telemetry.throttled_retries += 1;
        }

        // The interruption handler (EventBridge → Step Functions → Lambda)
        // picks the migration target and issues the new request.
        let handler_done = {
            let ControlPlane { functions, ec2, .. } = &mut self.cp;
            functions
                .invoke(INTERRUPTION_HANDLER, now, RetryPolicy::default(), ec2.ledger_mut(), |_| {
                    Ok(())
                })
                .map(|o| o.finished_at)
                .unwrap_or(now)
        };
        let placement = self.relocate(w, now, region);
        self.workloads[w].placement = placement;
        self.workloads[w].phase = WorkloadPhase::Requesting;
        scheduler.schedule_at(handler_done.max(now), Event::Launch(w));
    }

    fn handle_complete(&mut self, w: usize, instance: InstanceId, now: SimTime) {
        let Some(running) = &self.workloads[w].running else {
            return;
        };
        if running.instance != instance {
            return;
        }
        let region = running.region;
        let ready_at = running.ready_at;
        self.workloads[w].running = None;
        self.free_slot(region);
        let elapsed = now.saturating_duration_since(ready_at);
        let progress = self.workloads[w]
            .invocation
            .record_execution(elapsed)
            .expect("completion on a running invocation");
        debug_assert!(progress.finished, "completion event fired early");
        let billed = self
            .cp
            .ec2
            .terminate(instance, now, TerminationReason::Completed)
            .expect("completed instance was running");
        self.workloads[w].billed += billed;
        self.cp.tracer.record(
            now,
            TraceEvent::Completed { workload: w, region, instance, billed: billed.amount() },
        );
        self.workloads[w].completed_at = Some(now);
        self.workloads[w].phase = WorkloadPhase::Completed;
        self.completed += 1;
        self.completions.increment(now);
        // Clear any checkpoint state. The borrow split lets the key be
        // lent straight from the workload spec instead of cloned.
        if self.workloads[w].spec.kind.is_checkpointable() {
            let FleetModel { workloads, cp, .. } = self;
            let ControlPlane { kv, ec2, .. } = cp;
            let _ = kv.update_item(
                "spotverse-checkpoints",
                &workloads[w].spec.id,
                now,
                ec2.ledger_mut(),
                |item| {
                    item.insert("completed".into(), aws_stack::AttrValue::Bool(true));
                },
            );
        }
    }

    /// A workload hit its per-workload deadline unfinished: terminate its
    /// instance (if any) and retire it from the fleet. Only scheduled for
    /// workloads whose deadline precedes the global horizon, so classic
    /// experiments never see this event.
    fn handle_expire(&mut self, w: usize, now: SimTime) {
        if self.workloads[w].settled() {
            return;
        }
        self.workloads[w].expired = true;
        self.workloads[w].phase = WorkloadPhase::Expired;
        self.expired += 1;
        let mut region = None;
        let mut billed_amount = None;
        if let Some(running) = self.workloads[w].running.take() {
            let billed = self
                .cp
                .ec2
                .terminate(running.instance, now, TerminationReason::Manual)
                .expect("expired workload's instance was running");
            self.workloads[w].billed += billed;
            self.free_slot(running.region);
            region = Some(running.region);
            billed_amount = Some(billed.amount());
        }
        self.cp
            .tracer
            .record(now, TraceEvent::WorkloadExpired { workload: w, region, billed: billed_amount });
    }

    fn handle_monitor_tick(&mut self, now: SimTime, scheduler: &mut Scheduler<'_, Event>) {
        if self.done() {
            return;
        }
        match self.cp.run_monitor_collection(now) {
            Ok(_) => {
                self.cp.note_collection_success(now);
                self.cp.monitor_backoff = 0;
                scheduler.schedule_in(self.config.monitor_period, Event::MonitorTick);
            }
            Err(e) if e.is_retryable() => {
                // Back off with jitter, bounded by the normal period, and
                // try the collection again — decisions meanwhile run on
                // the last good snapshot.
                self.cp.note_collection_failure();
                self.cp.tracer.record(now, TraceEvent::CollectionFailed { retryable: true });
                self.cp.telemetry.throttled_retries += 1;
                let policy = crate::resilience::BackoffPolicy {
                    max_attempts: u32::MAX,
                    base: SimDuration::from_secs(30),
                    cap: SimDuration::from_mins(8),
                };
                let delay = policy
                    .delay(self.cp.monitor_backoff, &mut self.cp.backoff_rng)
                    .min(self.config.monitor_period);
                self.cp.monitor_backoff = (self.cp.monitor_backoff + 1).min(8);
                scheduler.schedule_in(delay, Event::MonitorTick);
            }
            // Non-retryable failures (the market refusing a read) don't
            // kill the run either: decisions keep serving the last good
            // snapshot — degrading past the TTL — and the next scheduled
            // tick tries again.
            Err(_) => {
                self.cp.note_collection_failure();
                self.cp.tracer.record(now, TraceEvent::CollectionFailed { retryable: false });
                scheduler.schedule_in(self.config.monitor_period, Event::MonitorTick);
            }
        }
    }
}

impl Model for FleetModel {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, scheduler: &mut Scheduler<'_, Event>) {
        if now >= self.horizon {
            self.aborted = true;
            return;
        }
        match event {
            Event::Start => self.handle_start(now, scheduler),
            Event::Arrive(b) => self.handle_arrive(b, now, scheduler),
            Event::Launch(w) => self.handle_launch(w, now, scheduler),
            Event::Retry(w) => self.handle_retry(w, now, scheduler),
            Event::Notice(w, instance) => {
                let FleetModel { workloads, cp, .. } = self;
                workloads[w].handle_notice(w, instance, now, cp);
            }
            Event::Reclaim(w, instance) => self.handle_reclaim(w, instance, now, scheduler),
            Event::Complete(w, instance) => self.handle_complete(w, instance, now),
            Event::Expire(w) => self.handle_expire(w, now),
            Event::MonitorTick => self.handle_monitor_tick(now, scheduler),
            Event::CheckpointTick(w, instance) => {
                self.handle_checkpoint_tick(w, instance, now, scheduler)
            }
        }
    }
}

/// Converts a flat per-region counter (indexed by [`Region::ALL`]
/// position) back into the sparse map the report serializes: only
/// regions that were actually touched appear, matching the old
/// `BTreeMap`-with-`entry()` accounting exactly.
fn region_count_map(counts: &[u64; Region::ALL.len()]) -> BTreeMap<Region, u64> {
    Region::ALL
        .iter()
        .zip(counts)
        .filter(|&(_, &n)| n != 0)
        .map(|(&region, &n)| (region, n))
        .collect()
}

/// Groups workload indices into arrival batches, ascending by time.
///
/// Sorting a pre-sized flat vector replaces the old per-instant
/// `BTreeMap` build: one allocation up front instead of a node per
/// distinct arrival time, and the stable sort preserves the
/// index-ascending order within a batch that the map's push order gave.
fn arrival_batches(workloads: &[WorkloadRuntime]) -> Vec<(SimTime, Vec<usize>)> {
    let mut arrivals: Vec<(SimTime, usize)> = Vec::with_capacity(workloads.len());
    arrivals.extend(workloads.iter().enumerate().map(|(w, r)| (r.arrival, w)));
    arrivals.sort_by_key(|&(at, _)| at);
    let mut batches: Vec<(SimTime, Vec<usize>)> = Vec::new();
    for (at, w) in arrivals {
        match batches.last_mut() {
            Some((t, ids)) if *t == at => ids.push(w),
            _ => batches.push((at, vec![w])),
        }
    }
    batches
}

/// Runs a fleet, building a fresh market from the config.
pub fn run_fleet(config: FleetConfig, strategy: Box<dyn Strategy>) -> FleetReport {
    let market = Arc::new(SpotMarket::new(config.market));
    run_fleet_on(market, config, strategy)
}

/// Runs a fleet against a shared market, so several strategies (or
/// several fleet shapes) can be compared on the identical market
/// trajectory.
///
/// # Panics
///
/// Panics if the market was built from a different market config than
/// the fleet's, if the fleet is empty, or if `region_capacity` is
/// `Some(0)`.
pub fn run_fleet_on(
    market: Arc<SpotMarket>,
    config: FleetConfig,
    strategy: Box<dyn Strategy>,
) -> FleetReport {
    assert_eq!(
        market.config(),
        config.market,
        "shared market must match the experiment's market config"
    );
    assert!(!config.workloads.is_empty(), "empty workload fleet");
    assert!(
        config.region_capacity != Some(0),
        "region_capacity of 0 can never place anything"
    );

    let root_rng = SimRng::seed_from_u64(config.seed);
    let chaos_engine = config
        .chaos
        .as_ref()
        .map(|scenario| ChaosEngine::new(scenario, config.seed, config.start));
    let mut cp = ControlPlane::new(
        Arc::clone(&market),
        config.instance_type,
        config.seed,
        config.monitor_pipeline,
        config.checkpoint_backend,
        &config.health,
        &config.trace,
        chaos_engine,
        &root_rng,
    );
    cp.snapshot_reuse = config.reuse_decision_snapshot;

    let start = config.start;
    let workloads: Vec<WorkloadRuntime> = config
        .workloads
        .iter()
        .map(|fw| {
            let arrival = start + fw.arrival;
            WorkloadRuntime::new(&fw.spec, arrival, arrival + config.max_runtime)
        })
        .collect();
    let mut batches = arrival_batches(&workloads);
    // Priority semantics: within one arrival batch, higher tiers are
    // handed to the strategy (and launched) first. The sort is stable, so
    // an all-default fleet keeps exact index order — committed golden
    // traces are untouched.
    for (_, ids) in &mut batches {
        ids.sort_by_key(|&w| std::cmp::Reverse(config.workloads[w].priority));
    }
    let horizon = workloads
        .iter()
        .map(|w| w.deadline)
        .max()
        .expect("non-empty fleet");

    let mut model = FleetModel {
        cp,
        strategy,
        strategy_rng: root_rng.fork("strategy"),
        workloads,
        batches,
        completed: 0,
        expired: 0,
        interruptions: CumulativeCounter::new("interruptions"),
        interruptions_by_region: [0; Region::ALL.len()],
        completions: CumulativeCounter::new("completions"),
        launches_by_region: [0; Region::ALL.len()],
        running_by_region: [0; Region::ALL.len()],
        placements_scratch: Vec::new(),
        checkpoint_cadence: None,
        capacity_deferrals: 0,
        horizon,
        aborted: false,
        config,
    };

    if model.cp.tracer.enabled() {
        let event = TraceEvent::RunStarted {
            strategy: model.strategy.name().to_owned(),
            seed: model.config.seed,
            workloads: model.workloads.len(),
            chaos: model.config.chaos.as_ref().map(|s| s.name().to_owned()),
            regime: (!model.config.market.regime.is_baseline())
                .then(|| model.config.market.regime.name().to_owned()),
        };
        model.cp.tracer.record(start, event);
    }
    let mut sim = Simulation::new(model);
    sim.schedule_at(start, Event::Start);
    sim.run_until(|m| m.done());
    let final_time = sim.now();
    let events = sim.events_delivered();
    let mut model = sim.into_model();

    // A run that ends while still degraded closes its interval here.
    if let Some(since) = model.cp.degraded_since.take() {
        let duration = final_time.saturating_duration_since(since);
        model.cp.freshness.degraded_time += duration;
        model.cp.tracer.record(final_time, TraceEvent::DegradedInterval { duration });
    }
    model.cp.tracer.record(
        final_time,
        TraceEvent::RunEnded { completed: model.completed, aborted: model.aborted },
    );
    let trace = std::mem::replace(&mut model.cp.tracer, Tracer::disabled()).finish(start);
    let resilience = model.cp.resilience();

    // Assemble the aggregate report.
    let completed_times: Vec<SimDuration> = model
        .workloads
        .iter()
        .filter_map(|w| w.completed_at)
        .map(|at| at - start)
        .collect();
    let makespan = completed_times
        .iter()
        .copied()
        .max()
        .unwrap_or(SimDuration::ZERO);
    let mean_completion = if completed_times.is_empty() {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(
            completed_times.iter().map(|d| d.as_secs()).sum::<u64>()
                / completed_times.len() as u64,
        )
    };
    let ledger = model.cp.ec2.ledger();
    let shared = ledger.total_for_service(ServiceKind::FunctionRuntime)
        + ledger.total_for_service(ServiceKind::KvStore)
        + ledger.total_for_service(ServiceKind::Metrics)
        + ledger.total_for_service(ServiceKind::ObjectStorage);
    let cost = CostBreakdown {
        total: ledger.total(),
        spot_instances: ledger.total_for_service(ServiceKind::SpotInstance),
        on_demand_instances: ledger.total_for_service(ServiceKind::OnDemandInstance),
        data_transfer: ledger.total_for_service(ServiceKind::DataTransfer),
        shared_services: shared,
    };
    let instance_hours: f64 = model
        .cp
        .ec2
        .instances()
        .iter()
        .map(|r| match r.state() {
            cloud_compute::InstanceState::Terminated { at, .. } => {
                (at - r.launched_at()).as_hours_f64()
            }
            cloud_compute::InstanceState::Running => {
                final_time.saturating_duration_since(r.launched_at()).as_hours_f64()
            }
        })
        .sum();

    let aggregate = ExperimentReport {
        strategy: model.strategy.name().to_owned(),
        workloads: model.workloads.len(),
        completed: model.completed,
        makespan,
        mean_completion,
        interruptions: model.interruptions.count(),
        interruptions_by_region: region_count_map(&model.interruptions_by_region),
        cumulative_interruptions: model.interruptions.series().clone(),
        completions_over_time: model.completions.series().clone(),
        launches_by_region: region_count_map(&model.launches_by_region),
        cost,
        instance_hours,
        spot_attempts: model.cp.ec2.spot_attempts(),
        spot_fulfillments: model.cp.ec2.spot_fulfillments(),
        checkpoints: model.cp.telemetry,
        resilience,
        trace,
    };
    let workloads = model
        .workloads
        .iter()
        .enumerate()
        .map(|(w, runtime)| runtime.report(w))
        .collect();
    FleetReport {
        aggregate,
        workloads,
        capacity_deferrals: model.capacity_deferrals,
        expired: model.expired,
        events,
    }
}
