//! The strategy tournament: every strategy × every market regime,
//! ranked on a deterministic leaderboard.
//!
//! The regime abstraction ([`cloud_market::MarketRegime`]) makes "which
//! strategy should I run?" a conditional question — the answer under a
//! capacity crunch need not match the calm baseline. The tournament
//! answers it mechanically: a fleet matrix of (strategy × regime × seed)
//! cells runs on the shared sweep pool ([`run_fleet_matrix`]), every
//! cell traced, and the per-regime merged traces feed the replay
//! analytics ([`win_matrix`]) so the pairwise cost wins are derived from
//! the same event-sourced ground truth as `spotverse analyse`.
//!
//! Ranking is lexicographic and total: completions (more is better),
//! then billed cost (less), then mean makespan (less), then strategy
//! name — so the leaderboard is deterministic for any `--jobs` value,
//! exactly like the sweeps it is built on. Optionally each non-baseline
//! regime layers its matched chaos accent ([`chaos::for_regime`]) on
//! top, exercising strategies under the fault texture the regime
//! implies rather than just its price/hazard drift.

use std::fmt::Write as _;

use cloud_market::MarketRegime;

use crate::fleet::FleetConfig;
use crate::replay::{replay_str, win_matrix, ReplayState, TimeWindow, WinMatrix};
use crate::strategy::Strategy;
use crate::sweep::{merged_fleet_trace_jsonl, run_fleet_matrix, FleetSweepCell, MarketCache};
use crate::trace::TraceConfig;

/// How fault injection enters the tournament matrix.
#[derive(Debug, Clone, Default)]
pub enum TournamentChaos {
    /// Fault-free: regimes differ only in market texture.
    #[default]
    Off,
    /// Each non-baseline regime runs under its matched chaos accent
    /// ([`chaos::for_regime`]); the baseline stays fault-free.
    RegimeMatched,
    /// One fixed scenario applied to every cell, regime included.
    Fixed(chaos::ChaosScenario),
}

/// The tournament matrix: which strategies meet which regimes, over how
/// many repetition seeds, on what fleet shape.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// First repetition seed; rep `r` runs at `base_seed + r`.
    pub base_seed: u64,
    /// Repetitions per (strategy, regime) pairing. Seeds are shared
    /// across strategies so the win matrices compare like with like.
    pub reps: u64,
    /// Strategy selectors, resolved by the caller's factory.
    pub strategies: Vec<String>,
    /// Regimes every strategy is entered under.
    pub regimes: Vec<MarketRegime>,
    /// Fault-injection mode.
    pub chaos: TournamentChaos,
    /// Fleet template: workloads, instance type, timing knobs. Per cell,
    /// `seed`/`market`/`chaos`/`trace` are overridden by the tournament.
    pub fleet: FleetConfig,
}

impl TournamentConfig {
    /// A tournament of `strategies` × `regimes` with `reps` seeds per
    /// pairing, starting from the fleet template's own seed.
    pub fn new(
        strategies: Vec<String>,
        regimes: Vec<MarketRegime>,
        reps: u64,
        fleet: FleetConfig,
    ) -> Self {
        TournamentConfig {
            base_seed: fleet.seed,
            reps,
            strategies,
            regimes,
            chaos: TournamentChaos::Off,
            fleet,
        }
    }

    /// Total cells the matrix will run.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.strategies.len() * self.regimes.len() * self.reps as usize
    }

    /// The chaos scenario a cell under `regime` runs with.
    fn scenario_for(&self, regime: MarketRegime) -> Option<chaos::ChaosScenario> {
        match &self.chaos {
            TournamentChaos::Off => None,
            TournamentChaos::RegimeMatched => chaos::for_regime(regime),
            TournamentChaos::Fixed(s) => Some(s.clone()),
        }
    }

    /// The fleet cells, regime-major then strategy then seed, so one
    /// regime's cells are a contiguous block in matrix (and outcome)
    /// order.
    fn build_cells(&self) -> Vec<FleetSweepCell> {
        let mut cells = Vec::with_capacity(self.cells());
        for &regime in &self.regimes {
            let scenario = self.scenario_for(regime);
            for strategy in &self.strategies {
                for rep in 0..self.reps {
                    let seed = self.base_seed + rep;
                    let mut config = self.fleet.clone();
                    config.seed = seed;
                    config.market.seed = seed;
                    config.market = config.market.with_regime(regime);
                    config.chaos = scenario.clone();
                    config.trace = TraceConfig::enabled();
                    let label = format!("{strategy}@{}/s{seed}", regime.name());
                    cells.push(FleetSweepCell::new(label, strategy.clone(), config));
                }
            }
        }
        cells
    }
}

/// One leaderboard row: a strategy's aggregate showing under one regime.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentRow {
    /// 1-based rank within the regime (1 = winner).
    pub rank: usize,
    /// Strategy selector.
    pub strategy: String,
    /// Cells that produced a report (of `reps` entered).
    pub cells: usize,
    /// Workloads completed across all reps.
    pub completed: usize,
    /// Workloads entered across all reps.
    pub workloads: usize,
    /// Total billed cost ($) across all reps.
    pub cost: f64,
    /// Mean per-rep makespan, hours.
    pub mean_makespan_hours: f64,
    /// Spot interruptions across all reps.
    pub interruptions: u64,
}

/// One regime's full standing: ranked rows plus the seed-matched
/// pairwise cost win matrix replayed from the regime's merged trace.
#[derive(Debug, Clone)]
pub struct RegimeStanding {
    /// The regime.
    pub regime: MarketRegime,
    /// Chaos accent the regime's cells ran under, if any.
    pub chaos: Option<String>,
    /// Rows in rank order.
    pub rows: Vec<TournamentRow>,
    /// Pairwise cost wins over the regime's shared seeds.
    pub wins: WinMatrix,
}

/// The complete tournament result.
#[derive(Debug, Clone)]
pub struct TournamentReport {
    /// One standing per regime, in configured regime order.
    pub standings: Vec<RegimeStanding>,
    /// Repetition seeds per pairing.
    pub reps: u64,
    /// Labels of cells that failed (panicked twice or lost their
    /// worker); their rows aggregate only surviving reps.
    pub failed: Vec<String>,
}

impl TournamentReport {
    /// The 1-based rank of `strategy` under `regime`, if both were in
    /// the tournament.
    #[must_use]
    pub fn rank_of(&self, regime: MarketRegime, strategy: &str) -> Option<usize> {
        self.standings
            .iter()
            .find(|s| s.regime == regime)?
            .rows
            .iter()
            .find(|r| r.strategy == strategy)
            .map(|r| r.rank)
    }
}

/// Runs the tournament matrix on the shared sweep worker pool and folds
/// the outcomes into ranked per-regime standings.
///
/// `strategy_for` resolves a selector into a fresh strategy instance; it
/// runs on the worker thread executing the cell. Markets are shared
/// through `cache`, so all cells at one (seed, regime) reuse a single
/// construction. The report is bit-identical for any `jobs ≥ 1`.
///
/// # Panics
///
/// Panics if `jobs` is zero, or if a succeeded cell's trace fails to
/// replay (impossible for traces the run itself produced).
pub fn run_tournament<F>(
    config: &TournamentConfig,
    jobs: usize,
    cache: &MarketCache,
    strategy_for: F,
) -> TournamentReport
where
    F: Fn(&str) -> Box<dyn Strategy> + Sync,
{
    let cells = config.build_cells();
    let outcomes = run_fleet_matrix(&cells, jobs, cache, |cell| strategy_for(&cell.strategy));
    let mut failed = Vec::new();
    let mut standings = Vec::with_capacity(config.regimes.len());
    let block = config.strategies.len() * config.reps as usize;
    for (r, &regime) in config.regimes.iter().enumerate() {
        let slice = &outcomes[r * block..(r + 1) * block];
        failed.extend(slice.iter().filter(|o| !o.is_ok()).map(|o| o.label.clone()));

        let mut rows: Vec<TournamentRow> = config
            .strategies
            .iter()
            .map(|strategy| {
                let mut row = TournamentRow {
                    rank: 0,
                    strategy: strategy.clone(),
                    cells: 0,
                    completed: 0,
                    workloads: 0,
                    cost: 0.0,
                    mean_makespan_hours: 0.0,
                    interruptions: 0,
                };
                let mut makespan_hours = 0.0;
                for outcome in slice.iter().filter(|o| &o.strategy == strategy) {
                    let Some(report) = outcome.report() else { continue };
                    let agg = &report.aggregate;
                    row.cells += 1;
                    row.completed += agg.completed;
                    row.workloads += agg.workloads;
                    row.cost += agg.cost.total.amount();
                    row.interruptions += agg.interruptions;
                    makespan_hours += agg.makespan.as_hours_f64();
                }
                if row.cells > 0 {
                    row.mean_makespan_hours = makespan_hours / row.cells as f64;
                }
                row
            })
            .collect();
        rows.sort_by(|a, b| {
            b.completed
                .cmp(&a.completed)
                .then_with(|| a.cost.total_cmp(&b.cost))
                .then_with(|| a.mean_makespan_hours.total_cmp(&b.mean_makespan_hours))
                .then_with(|| a.strategy.cmp(&b.strategy))
        });
        for (i, row) in rows.iter_mut().enumerate() {
            row.rank = i + 1;
        }

        // The win matrix is replayed from the regime's merged trace, not
        // taken from the in-memory reports: the leaderboard and
        // `spotverse analyse` must never disagree about who beat whom.
        let merged = merged_fleet_trace_jsonl(slice);
        let state: ReplayState = replay_str(&merged, TimeWindow::ALL)
            .expect("tournament traces replay cleanly");
        let wins = win_matrix(&state);

        standings.push(RegimeStanding {
            regime,
            chaos: config.scenario_for(regime).map(|s| s.name().to_owned()),
            rows,
            wins,
        });
    }
    TournamentReport { standings, reps: config.reps, failed }
}

/// Renders the leaderboard as deterministic text: one block per regime,
/// rows in rank order, then the regime's win matrix when contested.
#[must_use]
pub fn render_tournament(report: &TournamentReport) -> String {
    let mut out = String::new();
    let name_width = report
        .standings
        .iter()
        .flat_map(|s| s.rows.iter().map(|r| r.strategy.len()))
        .max()
        .unwrap_or(0)
        .max(8);
    for standing in &report.standings {
        let _ = write!(out, "regime {}", standing.regime.name());
        if let Some(chaos) = &standing.chaos {
            let _ = write!(out, "  (chaos: {chaos})");
        }
        out.push('\n');
        for row in &standing.rows {
            let _ = writeln!(
                out,
                "  #{} {:<name_width$}  completed {}/{}  cost ${:.2}  makespan {:.2}h  interruptions {}",
                row.rank,
                row.strategy,
                row.completed,
                row.workloads,
                row.cost,
                row.mean_makespan_hours,
                row.interruptions,
            );
        }
        let wm = &standing.wins;
        if wm.strategies.len() > 1 && wm.contested_seeds > 0 {
            let _ = writeln!(
                out,
                "  win matrix (cheaper-than counts over {} contested seeds)",
                wm.contested_seeds
            );
            let width = wm.strategies.iter().map(String::len).max().unwrap_or(0).max(4);
            let _ = write!(out, "    {:<width$}", "");
            for s in &wm.strategies {
                let _ = write!(out, " {s:>width$}");
            }
            out.push('\n');
            for (i, row) in wm.wins.iter().enumerate() {
                let _ = write!(out, "    {:<width$}", wm.strategies[i]);
                for (j, w) in row.iter().enumerate() {
                    if i == j {
                        let _ = write!(out, " {:>width$}", "-");
                    } else {
                        let _ = write!(out, " {w:>width$}");
                    }
                }
                out.push('\n');
            }
        }
    }
    if !report.failed.is_empty() {
        let _ = writeln!(out, "failed cells: {}", report.failed.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_workloads::{paper_fleet, WorkloadKind};
    use cloud_market::{InstanceType, Region};
    use sim_kernel::SimRng;

    use crate::config::SpotVerseConfig;
    use crate::strategy::{OnDemandStrategy, SingleRegionStrategy, SpotVerseStrategy};

    fn factory(selector: &str) -> Box<dyn Strategy> {
        match selector {
            "single-region" => Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
            "on-demand" => Box::new(OnDemandStrategy::new()),
            "spotverse" => Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
                InstanceType::M5Xlarge,
            ))),
            other => panic!("unknown selector {other}"),
        }
    }

    fn small_config(strategies: &[&str], regimes: Vec<MarketRegime>, reps: u64) -> TournamentConfig {
        let rng = SimRng::seed_from_u64(77);
        let fleet = FleetConfig::new(
            77,
            InstanceType::M5Xlarge,
            paper_fleet(WorkloadKind::GenomeReconstruction, 2, &rng)
                .into_iter()
                .map(|spec| crate::fleet::FleetWorkload::new(spec, sim_kernel::SimDuration::ZERO))
                .collect(),
        );
        TournamentConfig::new(
            strategies.iter().map(|s| (*s).to_owned()).collect(),
            regimes,
            reps,
            fleet,
        )
    }

    #[test]
    fn leaderboard_is_jobs_invariant() {
        let config = small_config(
            &["single-region", "on-demand"],
            vec![MarketRegime::Baseline, MarketRegime::CapacityCrunch],
            2,
        );
        let serial = run_tournament(&config, 1, &MarketCache::new(), factory);
        let parallel = run_tournament(&config, 4, &MarketCache::new(), factory);
        assert_eq!(render_tournament(&serial), render_tournament(&parallel));
        assert!(serial.failed.is_empty());
    }

    #[test]
    fn every_pairing_gets_a_ranked_row() {
        let config = small_config(
            &["single-region", "on-demand"],
            vec![MarketRegime::Baseline, MarketRegime::CorrelatedShock],
            1,
        );
        let report = run_tournament(&config, 2, &MarketCache::new(), factory);
        assert_eq!(report.standings.len(), 2);
        for standing in &report.standings {
            assert_eq!(standing.rows.len(), 2);
            let ranks: Vec<usize> = standing.rows.iter().map(|r| r.rank).collect();
            assert_eq!(ranks, vec![1, 2]);
            assert!(standing.rows.iter().all(|r| r.cells == 1 && r.workloads == 2));
        }
        assert!(report.rank_of(MarketRegime::Baseline, "single-region").is_some());
        assert_eq!(report.rank_of(MarketRegime::RegimeSwitching, "single-region"), None);
    }

    #[test]
    fn regime_matched_chaos_labels_non_baseline_regimes() {
        let mut config = small_config(
            &["single-region"],
            vec![MarketRegime::Baseline, MarketRegime::CapacityCrunch],
            1,
        );
        config.chaos = TournamentChaos::RegimeMatched;
        let report = run_tournament(&config, 1, &MarketCache::new(), factory);
        assert_eq!(report.standings[0].chaos, None, "baseline stays fault-free");
        assert_eq!(report.standings[1].chaos.as_deref(), Some("crunch_squeeze"));
    }

    #[test]
    fn win_matrix_contests_every_shared_seed() {
        let config = small_config(
            &["single-region", "on-demand", "spotverse"],
            vec![MarketRegime::Baseline],
            2,
        );
        let report = run_tournament(&config, 3, &MarketCache::new(), factory);
        let wins = &report.standings[0].wins;
        assert_eq!(wins.strategies.len(), 3);
        assert_eq!(wins.contested_seeds, 2, "both rep seeds are shared");
    }

    #[test]
    fn market_cache_shares_builds_across_strategies() {
        let config = small_config(
            &["single-region", "on-demand"],
            vec![MarketRegime::Baseline, MarketRegime::CapacityCrunch],
            2,
        );
        let cache = MarketCache::new();
        let _ = run_tournament(&config, 2, &cache, factory);
        // 2 seeds × 2 regimes distinct markets; the second strategy hits.
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 4);
    }
}
