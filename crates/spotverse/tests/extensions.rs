//! Integration tests for the extension features: the EFS checkpoint
//! backend, the forecasting strategy, provider-degraded metrics, and
//! ablated migration policies — each run through the full experiment
//! engine.

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, Region, Usd};
use sim_kernel::{SimRng, SimTime};
use spotverse::{
    run_experiment, AblatedSpotVerseStrategy, CheckpointBackend, ExperimentConfig,
    ForecastingSpotVerseStrategy, MetricAvailability, MigrationPolicy, ProviderAdaptedStrategy,
    SingleRegionStrategy, SpotVerseConfig, SpotVerseStrategy,
};

fn config(kind: WorkloadKind, n: usize, seed: u64, start_day: u64) -> ExperimentConfig {
    let rng = SimRng::seed_from_u64(seed);
    let mut c = ExperimentConfig::new(seed, InstanceType::M5Xlarge, paper_fleet(kind, n, &rng));
    c.start = SimTime::from_days(start_day);
    c
}

#[test]
fn efs_backend_completes_checkpoint_fleets() {
    let mut base = config(WorkloadKind::NgsPreprocessing, 6, 301, 40);
    base.checkpoint_backend = CheckpointBackend::SharedFileSystem;
    let report = run_experiment(
        base,
        Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
    );
    assert_eq!(report.completed, 6);
    // EFS storage accrual shows up in shared services.
    if report.interruptions > 0 {
        assert!(report.cost.shared_services > Usd::ZERO);
    }
}

#[test]
fn efs_and_s3_backends_agree_on_progress_semantics() {
    let mut s3_config = config(WorkloadKind::NgsPreprocessing, 6, 302, 40);
    s3_config.checkpoint_backend = CheckpointBackend::ObjectStore;
    let mut efs_config = s3_config.clone();
    efs_config.checkpoint_backend = CheckpointBackend::SharedFileSystem;
    let s3 = run_experiment(
        s3_config,
        Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
    );
    let efs = run_experiment(
        efs_config,
        Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
    );
    // Identical seeds → identical market and interruption pattern; the
    // backend only changes IO latency and storage fees.
    assert_eq!(s3.interruptions, efs.interruptions);
    assert_eq!(s3.completed, efs.completed);
}

#[test]
fn forecasting_strategy_runs_a_full_fleet() {
    let base = config(WorkloadKind::GenomeReconstruction, 6, 303, 1);
    let report = run_experiment(
        base,
        Box::new(ForecastingSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
        )),
    );
    assert_eq!(report.completed, 6);
    assert_eq!(report.strategy, "spotverse-forecast");
}

#[test]
fn provider_degraded_strategies_complete_and_rank_sensibly() {
    let base = config(WorkloadKind::GenomeReconstruction, 10, 304, 1);
    let full = run_experiment(
        base.clone(),
        Box::new(ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge).threshold(6).build(),
            MetricAvailability::Full,
        )),
    );
    let gcp = run_experiment(
        base,
        Box::new(ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge).threshold(7).build(),
            MetricAvailability::PriceOnly,
        )),
    );
    assert_eq!(full.completed, 10);
    assert_eq!(gcp.completed, 10);
    assert!(
        full.interruptions <= gcp.interruptions,
        "full metrics {} should not exceed price-only {}",
        full.interruptions,
        gcp.interruptions
    );
}

#[test]
fn stay_put_ablation_keeps_interruptions_in_one_region() {
    let base = config(WorkloadKind::GenomeReconstruction, 6, 305, 1);
    let mut cfg = SpotVerseConfig::builder(InstanceType::M5Xlarge);
    cfg = cfg.initial_placement(spotverse::InitialPlacement::SingleRegion(Region::CaCentral1));
    let report = run_experiment(
        base,
        Box::new(AblatedSpotVerseStrategy::new(cfg.build(), MigrationPolicy::StayPut)),
    );
    assert_eq!(report.completed, 6);
    // Every launch and interruption stays in the start region.
    assert!(report
        .launches_by_region
        .keys()
        .all(|r| *r == Region::CaCentral1));
}

#[test]
fn low_placement_market_still_converges_via_retries() {
    // Failure injection: p3.2xlarge has uniform placement mean 4 →
    // fulfill probability 0.55; requests frequently stay open and the
    // 15-minute sweep must carry the fleet to completion anyway.
    let rng = SimRng::seed_from_u64(306);
    let config = ExperimentConfig::new(
        306,
        InstanceType::P32xlarge,
        paper_fleet(WorkloadKind::StandardGeneral, 6, &rng),
    );
    let report = run_experiment(
        config,
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::P32xlarge,
        ))),
    );
    assert_eq!(report.completed, 6);
    assert!(
        report.spot_attempts > report.spot_fulfillments,
        "some requests must have stayed open ({} attempts, {} fulfilled)",
        report.spot_attempts,
        report.spot_fulfillments
    );
}
