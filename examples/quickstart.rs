//! Quickstart: run the paper's headline experiment (Figure 7) — 40
//! Galaxy-specific standard workloads on m5.xlarge, single-region
//! (ca-central-1) vs. SpotVerse vs. on-demand — and print the comparison.
//!
//! ```text
//! cargo run --release -p spotverse-examples --bin quickstart
//! ```

use std::sync::Arc;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, Region, SpotMarket};
use sim_kernel::SimRng;
use spotverse::{
    compare, run_experiment_on, summary_line, ExperimentConfig, InitialPlacement,
    OnDemandStrategy, SingleRegionStrategy, SpotVerseConfig, SpotVerseStrategy, Strategy,
};

fn main() {
    let seed = 2024;
    let instance_type = InstanceType::M5Xlarge;
    let rng = SimRng::seed_from_u64(seed);
    let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 40, &rng);
    let config = ExperimentConfig::new(seed, instance_type, fleet);

    // One shared market: every strategy sees the identical price and
    // interruption trajectory.
    let market = Arc::new(SpotMarket::new(config.market));

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        Box::new(SpotVerseStrategy::new(
            SpotVerseConfig::builder(instance_type)
                .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
                .build(),
        )),
        Box::new(OnDemandStrategy::new()),
    ];

    println!("SpotVerse quickstart — 40 standard workloads, m5.xlarge, start ca-central-1\n");
    let mut reports = Vec::new();
    for strategy in strategies {
        let report = run_experiment_on(Arc::clone(&market), config.clone(), strategy);
        println!("{}", summary_line(&report));
        reports.push(report);
    }

    let single = &reports[0];
    let spotverse = &reports[1];
    let on_demand = &reports[2];
    let vs_single = compare(single, spotverse);
    let vs_od = compare(on_demand, spotverse);
    println!();
    println!(
        "SpotVerse vs single-region: cost -{:.1}%  time -{:.1}%  interruptions -{:.1}%",
        vs_single.cost_reduction_pct,
        vs_single.time_reduction_pct,
        vs_single.interruption_reduction_pct
    );
    println!(
        "SpotVerse vs on-demand:     cost -{:.1}%  (paper: 46.7% at comparable duration)",
        vs_od.cost_reduction_pct
    );
    println!(
        "\ninterruption regions (SpotVerse): {:?}",
        spotverse.interruptions_by_region
    );
}
