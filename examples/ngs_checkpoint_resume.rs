//! Walk through the checkpoint workload's interruption/resume cycle by
//! hand: an NGS preprocessing invocation runs on a spot instance, receives
//! a two-minute interruption notice, persists its shard progress to the
//! KV-backed checkpoint store, and a replacement instance in another
//! region resumes from the last completed shard — losing at most one
//! shard of work.
//!
//! ```text
//! cargo run --release -p spotverse-examples --bin ngs_checkpoint_resume
//! ```

use bio_workloads::ngs_preprocessing::{ngs_preprocessing_workload, DATASET_GIB};
use cloud_market::Region;
use galaxy_flow::{CheckpointRecord, CheckpointStore, WorkflowInvocation};
use sim_kernel::{SimDuration, SimTime};
use spotverse::KvCheckpointStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workflow = ngs_preprocessing_workload(SimDuration::from_hours(10), 20);
    println!(
        "workflow `{}`: {} units over {} steps, dataset {DATASET_GIB} GiB",
        workflow.name(),
        galaxy_flow::ExecutionPlan::new(&workflow).unit_count(),
        workflow.len(),
    );

    let mut store = KvCheckpointStore::new(Region::UsEast1);
    let workload_id = "ngs-w-00";

    // --- First instance: ca-central-1 spot ------------------------------
    let mut invocation = WorkflowInvocation::new(&workflow);
    let boot = SimTime::from_secs(150);
    let notice_at = boot + SimDuration::from_hours_f64(4.3);
    let progress = invocation.record_execution(notice_at - boot)?;
    println!(
        "\n[ca-central-1] ran {} and completed {} units ({:.0}% done)",
        SimDuration::from_hours_f64(4.3),
        progress.units_completed,
        invocation.fraction_done() * 100.0
    );

    // Two-minute notice: upload the checkpoint record.
    store.set_clock(notice_at);
    store.save(
        workload_id,
        CheckpointRecord {
            units_done: invocation.units_done(),
            updated_at: notice_at,
        },
    )?;
    println!(
        "[ca-central-1] interruption notice: checkpointed {} units (1 GiB dataset fits the 2-minute window: {})",
        invocation.units_done(),
        cloud_compute::transfer::fits_in_interruption_notice(
            Region::CaCentral1,
            Region::UsEast1,
            DATASET_GIB
        )
    );
    invocation.handle_interruption();

    // A stale writer (the dying instance's duplicate upload) is rejected.
    let stale = store.save(
        workload_id,
        CheckpointRecord {
            units_done: 1,
            updated_at: notice_at + SimDuration::from_secs(30),
        },
    );
    println!("[ca-central-1] stale duplicate write rejected: {}", stale.is_err());

    // --- Replacement instance: eu-north-1 spot ---------------------------
    let record = store.load(workload_id)?.expect("checkpoint persisted");
    let mut resumed = WorkflowInvocation::new(&workflow);
    resumed.resume_from(record.units_done)?;
    println!(
        "\n[eu-north-1] resumed from checkpoint: {} units done, {} remaining",
        resumed.units_done(),
        resumed.remaining_duration()
    );

    let finish = resumed.record_execution(resumed.remaining_duration())?;
    assert!(finish.finished);
    store.clear(workload_id)?;
    // The only lost work is the partially-completed shard at notice time.
    let plan = galaxy_flow::ExecutionPlan::new(&workflow);
    let completed_work = plan.total_duration() - plan.remaining_after(record.units_done);
    let lost = (notice_at - boot).saturating_sub(completed_work);
    println!("[eu-north-1] finished; work lost to the interruption: {lost} (< one shard)");
    println!(
        "\ncheckpoint store billed ${:.6} for the KV traffic",
        store.ledger().total().amount()
    );
    Ok(())
}
