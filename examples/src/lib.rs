//! Shared helpers for the SpotVerse examples.
