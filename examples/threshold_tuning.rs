//! Explore SpotVerse's threshold knob (paper §5.2.4): sweep the combined-
//! score threshold and watch the cost/reliability trade-off move, including
//! the on-demand fallback when the threshold is unreachable.
//!
//! ```text
//! cargo run --release -p spotverse-examples --bin threshold_tuning
//! ```

use std::sync::Arc;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, SpotMarket};
use sim_kernel::{SimRng, SimTime};
use spotverse::{
    normalized_cost, run_experiment_on, ExperimentConfig, OnDemandStrategy, SpotVerseConfig,
    SpotVerseStrategy,
};

fn main() {
    let seed = 7_777;
    let instance_type = InstanceType::M5Xlarge;
    let rng = SimRng::seed_from_u64(seed);
    let fleet = paper_fleet(WorkloadKind::StandardGeneral, 20, &rng);
    let mut config = ExperimentConfig::new(seed, instance_type, fleet);
    config.start = SimTime::from_days(60);
    let market = Arc::new(SpotMarket::new(config.market));

    // The on-demand reference everything is normalized against.
    let od = run_experiment_on(
        Arc::clone(&market),
        config.clone(),
        Box::new(OnDemandStrategy::new()),
    );
    println!(
        "on-demand reference: {} for {} workloads\n",
        od.cost.total, od.workloads
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10} {:>18}",
        "threshold", "interruptions", "makespan (h)", "cost", "norm.", "placements"
    );

    for threshold in [2u8, 4, 5, 6, 8, 11, 13] {
        let strategy = SpotVerseStrategy::new(
            SpotVerseConfig::builder(instance_type)
                .threshold(threshold)
                .build(),
        );
        let report = run_experiment_on(Arc::clone(&market), config.clone(), Box::new(strategy));
        let on_demand_used = report.cost.on_demand_instances > cloud_market::Usd::ZERO;
        println!(
            "{:<10} {:>14} {:>14.1} {:>12} {:>10.2} {:>18}",
            threshold,
            report.interruptions,
            report.makespan.as_hours_f64(),
            report.cost.total.to_string(),
            normalized_cost(&report, od.cost.total),
            if on_demand_used {
                "on-demand fallback"
            } else {
                "spot"
            },
        );
    }

    println!("\nreading the sweep:");
    println!("  low thresholds chase the cheapest (least stable) regions — more interruptions;");
    println!("  mid thresholds (the paper's 5-6) balance price and stability;");
    println!("  unreachable thresholds trigger the cheapest-on-demand fallback (norm. ≈ 1).");
}
