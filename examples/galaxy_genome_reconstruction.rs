//! Run the paper's 23-step SARS-CoV-2 Genome Reconstruction workflow on a
//! Galaxy instance through the Planemo-like runner — the "Galaxy and Tool
//! Integration" path of paper §4: admin installs the tools, the API key
//! drives a headless run, and the history records each step's outputs.
//!
//! ```text
//! cargo run --release -p spotverse-examples --bin galaxy_genome_reconstruction
//! ```

use bio_workloads::genome_reconstruction::{genome_reconstruction_workload, required_tools};
use galaxy_flow::{GalaxyConfig, GalaxyInstance, PlanemoRunner};
use sim_kernel::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot Galaxy with the paper's automated-admin configuration.
    let admin = "admin@bioinformatics.lab";
    let api_key = "spotverse-api-key";
    let mut galaxy = GalaxyInstance::new(GalaxyConfig::automated(admin, api_key));

    // 2. Install every tool the workflow references (the AMI-bake step).
    for tool in required_tools() {
        let name = tool.id().as_str().to_owned();
        galaxy.install_tool(admin, tool)?;
        println!("installed tool: {name}");
    }
    println!(
        "tool shed holds {} tools; admin gate works: {}",
        galaxy.tool_shed().len(),
        galaxy
            .install_tool("random@user", galaxy_flow::Tool::from("rogue-tool"))
            .is_err()
    );

    // 3. Build the 23-step workflow (10-hour sleep-padded duration) and
    //    validate it.
    let workflow = genome_reconstruction_workload(SimDuration::from_hours(10));
    workflow.validate()?;
    println!(
        "\nworkflow `{}`: {} steps, total duration {}",
        workflow.name(),
        workflow.len(),
        workflow.total_duration()
    );

    // 4. Run it headlessly via Planemo with the API key.
    let runner = PlanemoRunner::new(api_key);
    let report = runner.run(&mut galaxy, &workflow, SimTime::ZERO)?;
    println!("\nstep timeline:");
    for step in &report.steps {
        println!(
            "  {:<28} {:>12} -> {:>12}",
            step.label,
            step.started_at.to_string(),
            step.finished_at.to_string()
        );
    }

    // 5. Inspect the history Galaxy accumulated.
    let history = galaxy.history(report.history)?;
    println!(
        "\nhistory `{}`: {} datasets, {:.2} GiB total",
        history.name(),
        history.len(),
        history.total_size_gib()
    );
    let lineages = history
        .iter()
        .find(|item| item.produced_by.as_deref() == Some("call-lineages-pangolin"))
        .expect("pangolin step produced output");
    println!(
        "pangolin lineage calls: {} ({} GiB)",
        lineages.dataset.name(),
        lineages.dataset.size_gib()
    );
    println!("\nfull run finished at {}", report.finished_at);
    Ok(())
}
