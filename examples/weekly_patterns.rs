//! Day-of-week interruption patterns (paper §7: "we plan to investigate how
//! resource usage impacts spot instance interruptions depending on the day
//! or time of the week, as we have observed differences in these patterns
//! during our experiments").
//!
//! Samples interruption delays across many weeks and buckets the resulting
//! interruption *events* by weekday, exposing the weekly capacity rhythm
//! built into the market model.
//!
//! ```text
//! cargo run --release -p spotverse-examples --bin weekly_patterns
//! ```

use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket, Weekday};
use sim_kernel::{SimDuration, SimRng, SimTime};

const WEEKDAYS: [Weekday; 7] = [
    Weekday::Monday,
    Weekday::Tuesday,
    Weekday::Wednesday,
    Weekday::Thursday,
    Weekday::Friday,
    Weekday::Saturday,
    Weekday::Sunday,
];

fn main() {
    let market = SpotMarket::new(MarketConfig::with_seed(7));
    let mut rng = SimRng::seed_from_u64(7);
    let region = Region::CaCentral1;
    let itype = InstanceType::M5Xlarge;

    // Launch a probe instance at the start of every hour across weeks
    // 5..25 (clear of the early surge window) and record which weekday its
    // sampled interruption lands on.
    let mut events = [0u64; 7];
    let mut probes = 0u64;
    for day in 35..175u64 {
        for hour in (0..24).step_by(2) {
            let start = SimTime::from_days(day) + SimDuration::from_hours(hour);
            probes += 1;
            if let Some(delay) = market
                .sample_interruption_delay(region, itype, start, &mut rng)
                .expect("within horizon")
            {
                if delay <= SimDuration::from_hours(10) {
                    let weekday = Weekday::of(start + delay);
                    let idx = WEEKDAYS.iter().position(|w| *w == weekday).unwrap();
                    events[idx] += 1;
                }
            }
        }
    }

    println!("interruption events by weekday ({probes} 10-hour probes, {region}/{itype}):\n");
    let max = *events.iter().max().unwrap() as f64;
    for (weekday, count) in WEEKDAYS.iter().zip(events.iter()) {
        let bar = "#".repeat((*count as f64 / max * 40.0).round() as usize);
        println!("  {:<10} {:>5}  {}", format!("{weekday:?}"), count, bar);
    }
    let weekdays: u64 = events[..5].iter().sum();
    let weekend: u64 = events[5..].iter().sum();
    println!(
        "\nweekday mean {:.0} vs weekend mean {:.0} events/day — the mid-week capacity",
        weekdays as f64 / 5.0,
        weekend as f64 / 2.0
    );
    println!("pressure the paper observed, now a first-class market signal (hazard_factor).");
}
