#!/usr/bin/env bash
# Compares the latest BENCH_*.json at the repo root against the committed
# baselines in scripts/bench_baselines/, failing on a >10% regression.
#
# Key conventions (see crates/bench/benches/*.rs):
#   *_secs / *allocs_per_event  lower is better  -> fail if > 1.10x baseline
#   *_per_sec / *_speedup       higher is better -> fail if < 0.90x baseline
#   anything else (counters, core counts)        -> informational, skipped
#
# Timings on a loaded machine are noisy; the 10% band is deliberately
# generous. Re-run scripts/bench.sh once before trusting a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINES=scripts/bench_baselines
TOLERANCE=${BENCH_TOLERANCE:-0.10}
status=0
compared=0

# Emits "key value" lines from a flat one-key-per-line JSON object.
flat_json() {
    sed -n 's/^[[:space:]]*"\([a-z_0-9]*\)":[[:space:]]*\(-\{0,1\}[0-9.]*\),\{0,1\}[[:space:]]*$/\1 \2/p' "$1"
}

for current in BENCH_*.json; do
    [ -e "$current" ] || continue
    baseline="$BASELINES/$current"
    if [ ! -f "$baseline" ]; then
        echo "bench_compare: no baseline for $current (add one under $BASELINES/)" >&2
        status=1
        continue
    fi
    echo "== $current vs $baseline (tolerance ${TOLERANCE}) =="
    while read -r key base_value; do
        value=$(flat_json "$current" | awk -v k="$key" '$1 == k { print $2 }')
        if [ -z "$value" ]; then
            echo "  MISSING  $key (in baseline, absent from $current)"
            status=1
            continue
        fi
        case "$key" in
        *_secs | *allocs_per_event) direction=lower ;;
        *_per_sec | *_speedup) direction=higher ;;
        *)
            compared=$((compared + 1))
            continue
            ;;
        esac
        verdict=$(awk -v v="$value" -v b="$base_value" -v t="$TOLERANCE" -v d="$direction" '
            BEGIN {
                if (b == 0) { print "ok"; exit }
                ratio = v / b
                if (d == "lower" && ratio > 1 + t) { printf "REGRESS %.2fx slower", ratio; exit }
                if (d == "higher" && ratio < 1 - t) { printf "REGRESS %.2fx of baseline", ratio; exit }
                print "ok"
            }')
        if [ "$verdict" != ok ]; then
            echo "  FAIL     $key: $value vs baseline $base_value ($verdict)"
            status=1
        else
            echo "  ok       $key: $value (baseline $base_value)"
        fi
        compared=$((compared + 1))
    done < <(flat_json "$baseline")
done

if [ "$compared" -eq 0 ]; then
    echo "bench_compare: no benchmark keys compared — are BENCH_*.json present?" >&2
    exit 1
fi
if [ "$status" -ne 0 ]; then
    echo "bench_compare: FAILED (>10% regression or missing data; see above)" >&2
else
    echo "bench_compare: all tracked metrics within ${TOLERANCE} of baseline"
fi
exit "$status"
