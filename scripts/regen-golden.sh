#!/usr/bin/env bash
# Regenerate the committed golden traces under tests/golden/ and show what
# changed. Use after an intentional change to the trace schema or to
# simulation behavior; review the diff before committing — every hunk is a
# behavior change the golden suite would otherwise have caught.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> regenerating golden traces (UPDATE_GOLDEN=1)"
UPDATE_GOLDEN=1 cargo test -q -p spotverse-integration --test golden_traces

echo "==> regenerating golden analytics snapshots (UPDATE_GOLDEN=1)"
# After the traces, so snapshots of committed traces see the fresh bytes.
UPDATE_GOLDEN=1 cargo test -q -p spotverse-integration --test golden_analytics

echo "==> regenerating golden tournament leaderboard (UPDATE_GOLDEN=1)"
UPDATE_GOLDEN=1 cargo test -q -p spotverse-integration --test golden_tournament

echo "==> re-running the suites against the fresh goldens"
cargo test -q -p spotverse-integration --test golden_traces
cargo test -q -p spotverse-integration --test golden_analytics
cargo test -q -p spotverse-integration --test golden_tournament

echo "==> golden diff summary"
git --no-pager diff --stat -- tests/golden
if git diff --quiet -- tests/golden && [ -z "$(git ls-files --others --exclude-standard tests/golden)" ]; then
    echo "(no drift: committed goldens already match)"
else
    git --no-pager diff -- tests/golden | head -100
    echo "review the diff above, then commit the regenerated traces."
fi
