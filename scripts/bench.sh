#!/usr/bin/env bash
# Performance snapshot: the criterion micro benches plus the sweep-engine
# macro bench, which writes BENCH_sweep.json at the repo root
# (market-build time, cells/sec serial vs parallel, monitor-tick rate,
# market-cache hit counters). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> micro: cargo bench --bench micro"
cargo bench -p spotverse-bench --bench micro

echo "==> sweep: cargo bench --bench sweep_perf"
cargo bench -p spotverse-bench --bench sweep_perf

echo "==> BENCH_sweep.json"
cat BENCH_sweep.json
