#!/usr/bin/env bash
# Performance snapshot: the criterion micro benches plus the macro benches
# that write BENCH_*.json at the repo root — sweep_perf (market-build time,
# cells/sec serial vs parallel, monitor-tick rate, market-cache hit
# counters) and fleet_scale (workloads/sec and events/sec at 1k/5k/10k,
# assessment-snapshot-reuse ablation). Finishes by diffing the fresh
# numbers against the committed baselines. Run from anywhere; operates on
# the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> micro: cargo bench --bench micro"
cargo bench -p spotverse-bench --bench micro

echo "==> sweep: cargo bench --bench sweep_perf"
cargo bench -p spotverse-bench --bench sweep_perf

echo "==> fleet: cargo bench --bench fleet_scale"
cargo bench -p spotverse-bench --bench fleet_scale

echo "==> BENCH_sweep.json"
cat BENCH_sweep.json

echo "==> BENCH_fleet.json"
cat BENCH_fleet.json

echo "==> baseline comparison"
scripts/bench_compare.sh
