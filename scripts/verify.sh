#!/usr/bin/env bash
# Full local verification: tier-1 (release build + test suite) plus the
# lint gate. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> benches: cargo build --benches"
cargo build --benches

echo "==> golden traces: byte-identical replay of committed traces"
# Drift fails here; bless intentional changes with scripts/regen-golden.sh.
cargo test -q -p spotverse-integration --test golden_traces

echo "==> golden analytics: analyse views of committed traces"
cargo test -q -p spotverse-integration --test golden_analytics

echo "==> golden tournament: committed leaderboard snapshot"
cargo test -q -p spotverse-integration --test golden_tournament

echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos smoke: full scenario library x all strategies, 2 workers"
chaos_out=$(cargo run --release --quiet --bin spotverse -- \
    chaos --instances 4 --workload ngs --jobs 2)
echo "$chaos_out"
if grep -q "FAILED" <<<"$chaos_out"; then
    echo "==> chaos smoke FAILED: at least one cell did not produce an Ok report" >&2
    exit 1
fi

echo "==> fleet smoke: staggered workloads x all strategies, capacity-capped, 2 workers"
fleet_out=$(cargo run --release --quiet --bin spotverse -- \
    fleet --instances 3 --workload ngs --spacing-mins 120 --capacity 2 \
    --strategy all --jobs 2)
echo "$fleet_out"
if grep -q "FAILED" <<<"$fleet_out"; then
    echo "==> fleet smoke FAILED: at least one cell did not produce an Ok report" >&2
    exit 1
fi

echo "==> tournament smoke: strategies x regimes leaderboard vs committed snapshot"
# The same argv the golden_tournament suite pins; the CLI output must
# match the committed leaderboard byte-for-byte and show real work.
tournament_out=$(cargo run --release --quiet --bin spotverse -- \
    tournament --instances 2 --workload ngs --seeds 1 --chaos regime)
if ! diff -u tests/golden/tournament/leaderboard.txt - <<<"$tournament_out" >/dev/null; then
    echo "==> tournament smoke FAILED: leaderboard drifted from committed snapshot" >&2
    echo "    bless intentional changes with scripts/regen-golden.sh" >&2
    exit 1
fi
if ! grep -qE "completed [1-9]" <<<"$tournament_out"; then
    echo "==> tournament smoke FAILED: no tournament cell completed any workload" >&2
    exit 1
fi
echo "    leaderboard matches snapshot ($(grep -c '^regime ' <<<"$tournament_out") regimes, nonzero completions)"

echo "==> loadgen smoke: 200-workload Poisson fleet, merged trace"
loadgen_out=$(cargo run --release --quiet --bin spotverse -- \
    fleet --loadgen poisson --workloads 200 --output trace)
completions=$(grep -c '"event":"completed"' <<<"$loadgen_out" || true)
echo "    $(wc -l <<<"$loadgen_out") trace lines, $completions completions"
if [ "$completions" -eq 0 ]; then
    echo "==> loadgen smoke FAILED: no workload completed" >&2
    exit 1
fi
if ! python3 -c '
import json, sys
for n, line in enumerate(sys.stdin, 1):
    if not isinstance(json.loads(line), dict):
        sys.exit(f"line {n}: not a JSON object")
' <<<"$loadgen_out"; then
    echo "==> loadgen smoke FAILED: merged trace is not valid JSONL" >&2
    exit 1
fi

echo "==> orchestrated sweep smoke: fault-free byte-equivalence + chaos accounting"
sweep_args=(sweep --instances 2 --workload ngs --strategy on-demand --seeds 2 --output trace)
inproc_out=$(cargo run --release --quiet --bin spotverse -- "${sweep_args[@]}")
orch_out=$(cargo run --release --quiet --bin spotverse -- "${sweep_args[@]}" --orchestrated true)
if [ "$inproc_out" != "$orch_out" ]; then
    echo "==> orchestrated sweep smoke FAILED: fault-free orchestration diverged from in-process" >&2
    exit 1
fi
echo "    fault-free traces byte-identical ($(wc -l <<<"$inproc_out") lines)"
chaos_sweep_out=$(cargo run --release --quiet --bin spotverse -- \
    sweep --instances 2 --workload ngs --strategy on-demand --seeds 4 \
    --orchestrated true --scenario sweep_shard_chaos)
echo "$chaos_sweep_out"
accounting=$(grep '^cells: ' <<<"$chaos_sweep_out" || true)
if [ -z "$accounting" ]; then
    echo "==> orchestrated sweep smoke FAILED: no accounting line under chaos" >&2
    exit 1
fi
# Every cell must be accounted for: total = completed + dead-lettered.
read -r total completed dead <<<"$(awk '/^cells: /{print $2, $5, $8}' <<<"$chaos_sweep_out")"
if [ "$total" -ne $((completed + dead)) ] || [ "$total" -ne 4 ]; then
    echo "==> orchestrated sweep smoke FAILED: $accounting does not reconcile" >&2
    exit 1
fi

echo "==> analyse smoke: CLI output matches committed analytics snapshots"
# The CLI shares its renderer with the golden-analytics suite, so the
# committed snapshots gate the CLI byte-for-byte.
for trace in tests/golden/*.jsonl; do
    name=$(basename "$trace" .jsonl)
    snapshot="tests/golden/analytics/$name.txt"
    if ! cargo run --release --quiet --bin spotverse -- analyse "$trace" \
        | diff -u "$snapshot" - >/dev/null; then
        echo "==> analyse smoke FAILED: $trace drifted from $snapshot" >&2
        exit 1
    fi
done
echo "    $(ls tests/golden/*.jsonl | wc -l) traces match their snapshots"
# Round-trip gate: analyse of a freshly generated trace reproduces the
# run's own report figures (cost + makespan) exactly.
trace_tmp=$(mktemp)
cargo run --release --quiet --bin spotverse -- trace --instances 3 --workload ngs > "$trace_tmp"
analyse_out=$(cargo run --release --quiet --bin spotverse -- analyse "$trace_tmp")
rm -f "$trace_tmp"
if ! grep -q "completed=3" <<<"$analyse_out"; then
    echo "==> analyse smoke FAILED: fresh trace did not analyse to a completed run" >&2
    echo "$analyse_out" >&2
    exit 1
fi

echo "==> bench baselines: committed BENCH_*.json vs scripts/bench_baselines"
# Cheap self-consistency gate — compares the committed numbers, does not
# re-run benches. scripts/bench.sh re-measures and then runs this same
# comparison against fresh numbers.
scripts/bench_compare.sh

echo "==> verify OK"
