#!/usr/bin/env bash
# Full local verification: tier-1 (release build + test suite) plus the
# lint gate. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> benches: cargo build --benches"
cargo build --benches

echo "==> golden traces: byte-identical replay of committed traces"
# Drift fails here; bless intentional changes with scripts/regen-golden.sh.
cargo test -q -p spotverse-integration --test golden_traces

echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos smoke: full scenario library x all strategies, 2 workers"
chaos_out=$(cargo run --release --quiet --bin spotverse -- \
    chaos --instances 4 --workload ngs --jobs 2)
echo "$chaos_out"
if grep -q "FAILED" <<<"$chaos_out"; then
    echo "==> chaos smoke FAILED: at least one cell did not produce an Ok report" >&2
    exit 1
fi

echo "==> fleet smoke: staggered workloads x all strategies, capacity-capped, 2 workers"
fleet_out=$(cargo run --release --quiet --bin spotverse -- \
    fleet --instances 3 --workload ngs --spacing-mins 120 --capacity 2 \
    --strategy all --jobs 2)
echo "$fleet_out"
if grep -q "FAILED" <<<"$fleet_out"; then
    echo "==> fleet smoke FAILED: at least one cell did not produce an Ok report" >&2
    exit 1
fi

echo "==> verify OK"
