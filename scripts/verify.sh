#!/usr/bin/env bash
# Full local verification: tier-1 (release build + test suite) plus the
# lint gate. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> benches: cargo build --benches"
cargo build --benches

echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
